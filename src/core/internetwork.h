// The Internetwork builder: constructs a "realization" of the
// architecture in the paper's sense — a concrete set of hosts, gateways
// and heterogeneous networks wired together — assigns addressing,
// installs routing (oracle static routes or the real protocols), and
// injects failures. Every experiment and example builds its topology
// through this class.
//
// The builder's graph lives in a TopologyStore (core/topology_store.h):
// nodes are dense ids into parallel arrays, adjacency is chronological
// incidence lists frozen to CSR spans for the routing passes, and LAN /
// subnet metadata are flat vectors — no pointer-keyed maps anywhere on
// the build or route-computation paths. Host/Gateway objects are still
// owned here for the object-level API; million-node populations use
// add_leaf_lan, which creates *compact* hosts that exist only in the
// store's arrays.
//
// A builder bound to a sim::ParallelSimulator places each node in a shard
// (the `shard` argument on add_host/add_gateway/add_lan). connect() then
// picks the link type automatically: same shard — the ordinary
// PointToPointLink; different shards — a link::BoundaryLink whose latency
// becomes the conservative engine's lookahead. Addressing, adjacency and
// static routing are oblivious to the partition, which is the paper's
// fate-sharing argument doing real work: nothing in the network layer
// knows or cares where the shard boundary falls.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/node.h"
#include "core/topology_store.h"
#include "link/boundary.h"
#include "link/lan.h"
#include "link/point_to_point.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/registry.h"
#include "telemetry/report.h"
#include "util/random.h"

namespace catenet::core {

class Internetwork {
public:
    explicit Internetwork(std::uint64_t seed);

    /// A builder whose nodes live in `psim`'s shards. `psim` must outlive
    /// the Internetwork. Node/link construction order must be identical
    /// across runs (it is the RNG fork order and the channel id order).
    Internetwork(std::uint64_t seed, sim::ParallelSimulator& psim);

    Internetwork(const Internetwork&) = delete;
    Internetwork& operator=(const Internetwork&) = delete;

    /// The (only) simulator in sequential mode; shard 0's in parallel mode.
    sim::Simulator& sim() noexcept { return shard_sim(0); }
    /// The simulator a given shard's nodes schedule on.
    sim::Simulator& shard_sim(std::uint32_t shard) noexcept {
        return psim_ != nullptr ? psim_->shard(shard) : sim_;
    }
    sim::ParallelSimulator* parallel() noexcept { return psim_; }
    util::Rng& rng() noexcept { return rng_; }

    // --- topology ------------------------------------------------------
    Host& add_host(const std::string& name, std::uint32_t shard = 0);
    Gateway& add_gateway(const std::string& name, std::uint32_t shard = 0);

    /// Connects two nodes with a link; allocates a /24 and binds .1 (a's
    /// side) and .2 (b's side). Same shard: a PointToPointLink, returns
    /// its index. Different shards: a BoundaryLink, returns
    /// kBoundaryIndexBase + boundary index (fail_link/link() reject such
    /// indices; use boundary_link()).
    std::size_t connect(Node& a, Node& b, const link::LinkParams& params);

    /// Creates a shared LAN segment; returns its index. All attachees must
    /// live in `shard` — a LAN's contention model is a single shared state.
    std::size_t add_lan(const link::LanParams& params, const std::string& name = "lan",
                        std::uint32_t shard = 0);

    /// Attaches a node to a LAN; returns the address it was given.
    util::Ipv4Address attach_to_lan(Node& node, std::size_t lan_index);

    /// Creates a stub LAN of `hosts` *compact* leaf hosts homed on
    /// `gateway` (no Host objects: the hosts exist only in the topology
    /// store's arrays and share one default-route record and one telemetry
    /// counter block). Allocates an 11.x.y.0/24 subnet — disjoint from the
    /// 10.x space links and materialized LANs use — and registers the
    /// shared counters with the metrics registry. Returns the leaf-LAN
    /// index; address/inject/delivery queries go through topology().
    std::uint32_t add_leaf_lan(Gateway& gateway, std::uint32_t hosts,
                               const std::string& name = "leaf");

    std::uint32_t shard_of(const Node& node) const {
        return store_.shard(node.id());
    }

    /// The struct-of-arrays topology under this builder: node kinds /
    /// shards / addresses, CSR adjacency, the flat edge table the
    /// partitioner consumes, and the leaf-host population.
    TopologyStore& topology() noexcept { return store_; }
    const TopologyStore& topology() const noexcept { return store_; }

    // --- routing --------------------------------------------------------
    /// Installs oracle shortest-path static routes everywhere (topology
    /// known to the operator; does not adapt to failures). One bulk load
    /// per node: the per-route cost is a sort key, not a table rebuild.
    void use_static_routes();

    /// Gives every host a default route via an adjacent gateway (or any
    /// neighbor if no gateway is adjacent).
    void install_host_default_routes();

    /// Starts distance-vector routing on every gateway and gives hosts
    /// default routes: the self-managing configuration (goals 1 and 4).
    void enable_dynamic_routing(const routing::DvConfig& config = {});

    // --- failure injection ------------------------------------------------
    void fail_link(std::size_t link_index) { links_.at(link_index)->set_up(false); }
    void restore_link(std::size_t link_index) { links_.at(link_index)->set_up(true); }

    // --- access & metrics ----------------------------------------------
    static constexpr std::size_t kBoundaryIndexBase = std::size_t{1} << 32;

    link::PointToPointLink& link(std::size_t i) { return *links_.at(i); }
    link::Lan& lan(std::size_t i) { return *lans_.at(i); }
    std::size_t link_count() const noexcept { return links_.size(); }

    /// Accepts a raw boundary index or a connect() return value.
    link::BoundaryLink& boundary_link(std::size_t i) {
        return *boundary_links_.at(i >= kBoundaryIndexBase ? i - kBoundaryIndexBase : i);
    }
    std::size_t boundary_link_count() const noexcept { return boundary_links_.size(); }

    /// Materialized nodes only (leaf hosts have no objects), in
    /// construction order.
    const std::vector<Node*>& nodes() const noexcept { return node_ptrs_; }

    /// Total bytes clocked onto all wires — the "byte-hops" cost metric
    /// for the E5 experiments.
    std::uint64_t total_link_bytes() const;

    // --- telemetry -----------------------------------------------------
    /// The metrics registry. Nodes and links register themselves as the
    /// topology is built; read it through metrics_report().
    telemetry::Registry& metrics() noexcept { return registry_; }
    const telemetry::Registry& metrics() const noexcept { return registry_; }

    /// Attaches a binary flight recorder: one lane per node, in node
    /// construction order (the deterministic merge tie-break order, same
    /// rule as ip::TraceCollector). Call after the topology is built —
    /// nodes added later are not recorded. Idempotent; returns the
    /// recorder.
    telemetry::FlightRecorder& attach_flight_recorder(
        std::size_t lane_capacity = telemetry::FlightRecorder::kDefaultLaneCapacity);
    telemetry::FlightRecorder* flight_recorder() noexcept { return recorder_.get(); }

    /// Starts periodic gauge sampling: queue depth and utilization series
    /// for every same-shard point-to-point link, sampled by a per-shard
    /// event on that shard's own engine. Call after the topology is built.
    void enable_gauge_sampling(sim::Time period);

    /// Adds cwnd / flight-size / srtt gauge series for one TCP socket
    /// (sockets are dynamic, so they are watched explicitly). The series
    /// stop updating when the socket dies; they are never removed.
    void watch_tcp(Host& host, const std::shared_ptr<tcp::TcpSocket>& socket,
                   const std::string& label);

    /// Snapshot of every registered counter, link statistic and gauge.
    telemetry::MetricsReport metrics_report() const {
        return telemetry::MetricsReport::collect(registry_, now(), recorder_.get());
    }

    /// Runs the simulation for `duration` of simulated time (all shards,
    /// in parallel mode).
    void run_for(sim::Time duration);
    sim::Time now() const noexcept {
        return psim_ != nullptr ? psim_->now() : sim_.now();
    }

private:
    util::Ipv4Prefix allocate_subnet();
    util::Ipv4Prefix allocate_leaf_subnet();
    void check_shard(std::uint32_t shard) const;
    telemetry::GaugeSampler& sampler_for(std::uint32_t shard);

    sim::Simulator sim_;  ///< sequential mode's engine (idle when psim_ set)
    sim::ParallelSimulator* psim_ = nullptr;
    util::Rng rng_;
    TopologyStore store_;
    std::vector<std::unique_ptr<Host>> hosts_;
    std::vector<std::unique_ptr<Gateway>> gateways_;
    std::vector<Node*> node_ptrs_;
    std::vector<std::unique_ptr<link::PointToPointLink>> links_;
    std::vector<std::unique_ptr<link::BoundaryLink>> boundary_links_;
    std::vector<std::unique_ptr<link::Lan>> lans_;
    std::uint32_t next_subnet_ = 1;       ///< 10.x point-to-point / LAN space
    std::uint32_t next_leaf_subnet_ = 0;  ///< 11.x leaf-LAN space
    telemetry::Registry registry_;
    std::unique_ptr<telemetry::FlightRecorder> recorder_;
    std::vector<std::unique_ptr<telemetry::GaugeSampler>> samplers_;  ///< by shard
    std::vector<std::uint32_t> link_shard_;  ///< shard per links_ entry
    sim::Time gauge_period_;                 ///< zero until sampling enabled
    bool link_gauges_registered_ = false;
};

}  // namespace catenet::core
