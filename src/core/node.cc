#include "core/node.h"

namespace catenet::core {

routing::DistanceVector& Gateway::enable_distance_vector(routing::DvConfig config) {
    if (!dv_) {
        dv_ = std::make_unique<routing::DistanceVector>(ip_, config);
        dv_->start();
    }
    return *dv_;
}

routing::EgpSpeaker& Gateway::enable_egp(std::uint16_t region, routing::EgpConfig config) {
    if (!egp_) {
        egp_ = std::make_unique<routing::EgpSpeaker>(ip_, region, config);
        if (dv_) {
            // Redistribute inter-region reachability into the interior.
            dv_->set_export_hook([this] { return egp_->redistribution_entries(); });
        }
        egp_->start();
    }
    return *egp_;
}

FlowTable& Gateway::enable_flow_accounting(sim::Time idle_timeout, sim::Time sweep_period) {
    if (!flows_) {
        flows_ = std::make_unique<FlowTable>(idle_timeout);
        ip_.set_forward_tap([this](const ip::Ipv4Header& header, std::size_t bytes) {
            FlowKey key;
            key.src = header.src.value();
            key.dst = header.dst.value();
            key.protocol = header.protocol;
            key.tos = header.tos;
            // The tap sees decoded headers but not the payload; reuse the
            // identification-free key (ports unavailable here would force a
            // reparse — acceptable for gateway-grain accounting, and the
            // benchmarked classifier path in FlowKey/classify_packet covers
            // the port-aware variant).
            flows_->record(key, bytes, sim_.now());
        });
        sweep_timer_ = std::make_unique<sim::PeriodicTimer>(
            sim_, [this] { flows_->sweep(sim_.now()); });
        sweep_timer_->start(sweep_period);
    }
    return *flows_;
}

void Gateway::set_down(bool down) {
    Node::set_down(down);
    if (down) {
        // Crash semantics: all soft state evaporates — flow records and
        // protocol-learned routes (RAM). Static routes model the config
        // file on stable storage and survive.
        if (flows_) flows_->clear();
        ip_.routing_table().remove_by_origin("dv");
        ip_.routing_table().remove_by_origin("egp");
    }
}

}  // namespace catenet::core
