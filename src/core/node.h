// Node roles in the datagram internet. A Host carries the full transport
// stack (the paper's goal 6: the burden of reliability lives here); a
// Gateway is an IP forwarder plus optional routing protocols and flow
// accounting — and structurally nothing else (fate-sharing, goal 1).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/flow.h"
#include "ip/ip_stack.h"
#include "routing/distance_vector.h"
#include "routing/egp.h"
#include "sim/timer.h"
#include "tcp/simple_arq.h"
#include "tcp/tcp.h"
#include "udp/udp.h"
#include "util/random.h"

namespace catenet::core {

class Node {
public:
    Node(sim::Simulator& sim, std::string name)
        : sim_(sim), ip_(sim, name), name_(std::move(name)) {}
    virtual ~Node() = default;
    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    ip::IpStack& ip() noexcept { return ip_; }
    const ip::IpStack& ip() const noexcept { return ip_; }
    sim::Simulator& simulator() noexcept { return sim_; }
    const std::string& name() const noexcept { return name_; }
    util::Ipv4Address address() const { return ip_.primary_address(); }

    /// Dense index into the owning Internetwork's TopologyStore, assigned
    /// at add_host/add_gateway time (construction order). The store's
    /// parallel arrays — shard, kind, adjacency spans — are keyed by this,
    /// so topology queries never hash or compare pointers.
    std::uint32_t id() const noexcept { return id_; }
    void set_id(std::uint32_t id) noexcept { id_ = id; }

    /// Crash / restore the whole node.
    virtual void set_down(bool down) { ip_.set_down(down); }
    bool is_down() const noexcept { return ip_.is_down(); }

protected:
    sim::Simulator& sim_;
    ip::IpStack ip_;
    std::string name_;
    std::uint32_t id_ = 0;
};

/// An end system: IP + UDP + TCP (+ the ARQ baseline transport).
class Host final : public Node {
public:
    Host(sim::Simulator& sim, std::string name, util::Rng& parent_rng)
        : Node(sim, std::move(name)),
          rng_(parent_rng.fork()),
          udp_(ip_),
          tcp_(ip_, rng_),
          arq_(ip_) {}

    udp::UdpStack& udp() noexcept { return udp_; }
    tcp::TcpStack& tcp() noexcept { return tcp_; }
    tcp::ArqEndpoint& arq() noexcept { return arq_; }
    util::Rng& rng() noexcept { return rng_; }

private:
    util::Rng rng_;
    udp::UdpStack udp_;
    tcp::TcpStack tcp_;
    tcp::ArqEndpoint arq_;
};

/// A packet switch of the datagram architecture. Forwarding is enabled at
/// construction; everything else (routing protocols, flow accounting) is
/// opt-in and — critically — soft state.
class Gateway final : public Node {
public:
    Gateway(sim::Simulator& sim, std::string name) : Node(sim, std::move(name)) {
        ip_.set_forwarding(true);
    }

    /// Turns on the intra-region routing protocol.
    routing::DistanceVector& enable_distance_vector(routing::DvConfig config = {});

    /// Turns on the inter-region protocol (goal 4). Call after
    /// enable_distance_vector if interior redistribution is wanted.
    routing::EgpSpeaker& enable_egp(std::uint16_t region, routing::EgpConfig config = {});

    /// Turns on per-flow accounting of forwarded traffic (goal 7 / E10).
    FlowTable& enable_flow_accounting(sim::Time idle_timeout = sim::seconds(30),
                                      sim::Time sweep_period = sim::seconds(5));

    /// Turns on ICMP Source Quench on egress-queue drops (RFC 792's
    /// congestion feedback; era-faithful, ablated in the benches). Call
    /// after all links are connected.
    void enable_source_quench(sim::Time min_interval = sim::milliseconds(50)) {
        ip_.set_source_quench(true, min_interval);
    }

    routing::DistanceVector* distance_vector() noexcept { return dv_.get(); }
    routing::EgpSpeaker* egp() noexcept { return egp_.get(); }
    FlowTable* flow_table() noexcept { return flows_.get(); }

    void set_down(bool down) override;

private:
    std::unique_ptr<routing::DistanceVector> dv_;
    std::unique_ptr<routing::EgpSpeaker> egp_;
    std::unique_ptr<FlowTable> flows_;
    std::unique_ptr<sim::PeriodicTimer> sweep_timer_;
};

}  // namespace catenet::core
