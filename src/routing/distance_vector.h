// Intra-region distance-vector routing (RIP-like): periodic full-table
// broadcasts, hop-count metric with infinity = 16, split horizon with
// poisoned reverse, triggered updates, and route expiry. This is the
// "consistent routing within one administration" half of the paper's
// two-tier answer to goal 4.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "ip/ip_stack.h"
#include "routing/messages.h"
#include "sim/timer.h"

namespace catenet::routing {

struct DvConfig {
    sim::Time period = sim::seconds(5);
    /// A learned route not refreshed within this window is expired.
    sim::Time route_timeout = sim::seconds(18);
    std::uint32_t infinity = 16;
    bool split_horizon = true;
    bool triggered_updates = true;
};

struct DvStats {
    std::uint64_t updates_sent = 0;
    std::uint64_t updates_received = 0;
    std::uint64_t routes_learned = 0;
    std::uint64_t routes_expired = 0;
};

class DistanceVector {
public:
    /// Supplies extra (prefix, metric) entries to advertise — the EGP
    /// speaker uses this to redistribute inter-region reachability.
    using ExportHook = std::function<std::vector<RouteEntry>()>;

    DistanceVector(ip::IpStack& stack, DvConfig config = {});

    void start();
    void stop();

    void set_export_hook(ExportHook hook) { export_hook_ = std::move(hook); }

    /// Excludes an interface from the protocol entirely (no updates sent,
    /// updates arriving there ignored). Border gateways disable their
    /// inter-region interfaces: the interior protocol must not leak across
    /// a management boundary (goal 4).
    void disable_interface(std::size_t ifindex) { disabled_ifaces_.insert(ifindex); }

    const DvStats& stats() const noexcept { return stats_; }

    /// Simulation time of the most recent routing-table change this
    /// protocol made; convergence benches poll this.
    sim::Time last_change() const noexcept { return last_change_; }

private:
    struct Learned {
        std::size_t ifindex;
        util::Ipv4Address from;
        std::uint32_t metric;
        sim::Time expires;
    };

    void broadcast_update();
    void on_message(const ip::Ipv4Header& header, std::span<const std::uint8_t> payload,
                    std::size_t ifindex);
    void expire_routes();
    void on_interface_down(std::size_t ifindex);
    void invalidate(const util::Ipv4Prefix& prefix);
    std::vector<RouteEntry> build_entries(std::size_t out_ifindex) const;
    void note_change();

    ip::IpStack& stack_;
    DvConfig config_;
    sim::PeriodicTimer update_timer_;
    sim::PeriodicTimer expiry_timer_;
    sim::Timer triggered_timer_;
    std::map<util::Ipv4Prefix, Learned> learned_;
    /// Recently invalidated prefixes, advertised at infinity until their
    /// deadline so neighbors hear the withdrawal (route poisoning).
    std::map<util::Ipv4Prefix, sim::Time> poisoned_;
    std::set<std::size_t> disabled_ifaces_;
    ExportHook export_hook_;
    DvStats stats_;
    sim::Time last_change_;
    bool running_ = false;
    bool observers_registered_ = false;
};

}  // namespace catenet::routing
