#include "routing/messages.h"

namespace catenet::routing {

namespace {

constexpr std::uint8_t kDvVersion = 1;
constexpr std::uint8_t kEgpVersion = 1;

void put_entries(util::BufferWriter& w, const std::vector<RouteEntry>& entries) {
    w.put_u16(static_cast<std::uint16_t>(entries.size()));
    for (const auto& e : entries) {
        w.put_u32(e.prefix.address().value());
        w.put_u8(static_cast<std::uint8_t>(e.prefix.length()));
        w.put_u32(e.metric);
    }
}

bool get_entries(util::BufferReader& r, std::vector<RouteEntry>& out) {
    const std::uint16_t count = r.get_u16();
    out.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
        const util::Ipv4Address addr{r.get_u32()};
        const int len = r.get_u8();
        if (len > 32) return false;
        const std::uint32_t metric = r.get_u32();
        out.push_back(RouteEntry{util::Ipv4Prefix(addr, len), metric});
    }
    return true;
}

}  // namespace

util::ByteBuffer encode_dv(const DvMessage& msg) {
    util::BufferWriter w(4 + msg.entries.size() * 9);
    w.put_u8(kDvVersion);
    w.put_u8(0);  // reserved
    put_entries(w, msg.entries);
    return w.take();
}

std::optional<DvMessage> decode_dv(std::span<const std::uint8_t> wire) {
    try {
        util::BufferReader r(wire);
        if (r.get_u8() != kDvVersion) return std::nullopt;
        r.skip(1);
        DvMessage msg;
        if (!get_entries(r, msg.entries)) return std::nullopt;
        return msg;
    } catch (const util::DecodeError&) {
        return std::nullopt;
    }
}

util::ByteBuffer encode_egp(const EgpMessage& msg) {
    util::BufferWriter w(6 + msg.entries.size() * 9);
    w.put_u8(kEgpVersion);
    w.put_u8(0);  // reserved
    w.put_u16(msg.region);
    put_entries(w, msg.entries);
    return w.take();
}

std::optional<EgpMessage> decode_egp(std::span<const std::uint8_t> wire) {
    try {
        util::BufferReader r(wire);
        if (r.get_u8() != kEgpVersion) return std::nullopt;
        r.skip(1);
        EgpMessage msg;
        msg.region = r.get_u16();
        if (!get_entries(r, msg.entries)) return std::nullopt;
        return msg;
    } catch (const util::DecodeError&) {
        return std::nullopt;
    }
}

}  // namespace catenet::routing
