// Inter-region reachability protocol, modeled on the original EGP: border
// gateways of independently-managed regions exchange "which prefixes my
// region can reach" with explicitly configured peers, subject to policy
// filters. Interior gateways never see it; the EGP speaker redistributes
// what it learns into the region's distance-vector protocol. This is the
// second tier of the paper's goal-4 architecture.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "ip/ip_stack.h"
#include "routing/messages.h"
#include "sim/timer.h"

namespace catenet::routing {

struct EgpConfig {
    sim::Time period = sim::seconds(10);
    sim::Time route_timeout = sim::seconds(35);
    std::uint32_t metric_offset = 1;  ///< added per inter-region hop
};

struct EgpStats {
    std::uint64_t updates_sent = 0;
    std::uint64_t updates_received = 0;
    std::uint64_t routes_imported = 0;
    std::uint64_t routes_filtered = 0;
};

class EgpSpeaker {
public:
    /// Policy filter: return false to refuse to export/import a prefix.
    /// `peer_region` identifies the neighbor the decision concerns.
    using Policy = std::function<bool(const util::Ipv4Prefix&, std::uint16_t peer_region)>;

    EgpSpeaker(ip::IpStack& stack, std::uint16_t region, EgpConfig config = {});

    void add_peer(util::Ipv4Address peer);
    void start();
    void stop();

    void set_export_policy(Policy p) { export_policy_ = std::move(p); }
    void set_import_policy(Policy p) { import_policy_ = std::move(p); }

    std::uint16_t region() const noexcept { return region_; }
    const EgpStats& stats() const noexcept { return stats_; }
    sim::Time last_change() const noexcept { return last_change_; }

    /// Entries to fold into the interior DV advertisements (learned
    /// inter-region prefixes with their metrics).
    std::vector<RouteEntry> redistribution_entries() const;

private:
    struct Imported {
        util::Ipv4Address from;
        std::uint16_t from_region;
        std::uint32_t metric;
        sim::Time expires;
    };

    void send_updates();
    void on_message(const ip::Ipv4Header& header, std::span<const std::uint8_t> payload,
                    std::size_t ifindex);
    void expire_routes();
    std::vector<RouteEntry> build_export(std::uint16_t peer_region) const;

    ip::IpStack& stack_;
    std::uint16_t region_;
    EgpConfig config_;
    sim::PeriodicTimer update_timer_;
    sim::PeriodicTimer expiry_timer_;
    std::vector<util::Ipv4Address> peers_;
    std::map<util::Ipv4Prefix, Imported> imported_;
    Policy export_policy_;
    Policy import_policy_;
    EgpStats stats_;
    sim::Time last_change_;
    bool running_ = false;
};

}  // namespace catenet::routing
