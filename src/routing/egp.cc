#include "routing/egp.h"

#include <algorithm>

#include "ip/protocols.h"

namespace catenet::routing {

EgpSpeaker::EgpSpeaker(ip::IpStack& stack, std::uint16_t region, EgpConfig config)
    : stack_(stack),
      region_(region),
      config_(config),
      update_timer_(stack.simulator(), [this] { send_updates(); }),
      expiry_timer_(stack.simulator(), [this] { expire_routes(); }) {
    stack_.register_protocol(
        ip::kProtoEgp,
        [this](const ip::Ipv4Header& h, std::span<const std::uint8_t> p, std::size_t ifindex) {
            on_message(h, p, ifindex);
        });
}

void EgpSpeaker::add_peer(util::Ipv4Address peer) { peers_.push_back(peer); }

void EgpSpeaker::start() {
    running_ = true;
    update_timer_.start(config_.period, /*start_immediately=*/true);
    expiry_timer_.start(config_.period);
}

void EgpSpeaker::stop() {
    running_ = false;
    update_timer_.stop();
    expiry_timer_.stop();
}

std::vector<RouteEntry> EgpSpeaker::redistribution_entries() const {
    std::vector<RouteEntry> entries;
    for (const auto& [prefix, imported] : imported_) {
        entries.push_back(RouteEntry{prefix, imported.metric});
    }
    return entries;
}

std::vector<RouteEntry> EgpSpeaker::build_export(std::uint16_t peer_region) const {
    // Export what this region itself can reach: connected, static and
    // interior (dv) routes. Imported egp routes are not re-exported —
    // the original EGP likewise assumed a non-transit topology; a full
    // path-vector protocol (BGP) postdates the paper.
    std::vector<RouteEntry> entries;
    for (const auto& route : stack_.routing_table().routes()) {
        if (route.origin == "egp") continue;
        if (export_policy_ && !export_policy_(route.prefix, peer_region)) continue;
        entries.push_back(RouteEntry{route.prefix, route.metric});
    }
    return entries;
}

void EgpSpeaker::send_updates() {
    if (!running_ || stack_.is_down()) return;
    for (const auto peer : peers_) {
        EgpMessage msg;
        msg.region = region_;
        // Peer region is unknown until we hear from it; policy sees 0 then.
        std::uint16_t peer_region = 0;
        for (const auto& [prefix, imp] : imported_) {
            if (imp.from == peer) {
                peer_region = imp.from_region;
                break;
            }
        }
        msg.entries = build_export(peer_region);
        if (msg.entries.empty()) continue;
        const auto wire = encode_egp(msg);
        if (stack_.send(ip::kProtoEgp, peer, wire)) {
            ++stats_.updates_sent;
        }
    }
}

void EgpSpeaker::on_message(const ip::Ipv4Header& header,
                            std::span<const std::uint8_t> payload, std::size_t ifindex) {
    if (!running_ || stack_.is_down()) return;
    // Only accept from configured peers: management boundary enforcement.
    if (std::find(peers_.begin(), peers_.end(), header.src) == peers_.end()) return;
    auto msg = decode_egp(payload);
    if (!msg || msg->region == region_) return;
    ++stats_.updates_received;

    const sim::Time now = stack_.simulator().now();
    for (const auto& entry : msg->entries) {
        if (import_policy_ && !import_policy_(entry.prefix, msg->region)) {
            ++stats_.routes_filtered;
            continue;
        }
        // Our own region's routes win over anything imported.
        auto existing = stack_.routing_table().find(entry.prefix);
        if (existing && existing->origin != "egp") continue;

        const std::uint32_t metric = entry.metric + config_.metric_offset;
        auto it = imported_.find(entry.prefix);
        const bool from_current = it != imported_.end() && it->second.from == header.src;
        const bool better = it == imported_.end() || metric < it->second.metric;
        if (from_current || better) {
            ip::Route route;
            route.prefix = entry.prefix;
            route.next_hop = header.src;
            route.ifindex = ifindex;
            route.metric = metric;
            route.origin = "egp";
            stack_.routing_table().install(route);
            const bool changed = !from_current || it->second.metric != metric;
            imported_[entry.prefix] =
                Imported{header.src, msg->region, metric, now + config_.route_timeout};
            if (changed) {
                ++stats_.routes_imported;
                last_change_ = now;
            }
        }
    }
}

void EgpSpeaker::expire_routes() {
    const sim::Time now = stack_.simulator().now();
    for (auto it = imported_.begin(); it != imported_.end();) {
        if (it->second.expires <= now) {
            stack_.routing_table().remove(it->first);
            it = imported_.erase(it);
            last_change_ = now;
        } else {
            ++it;
        }
    }
}

}  // namespace catenet::routing
