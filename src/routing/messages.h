// Wire formats for the two routing protocols (goal 4: distributed
// management). Both advertise (prefix, metric) vectors; the EGP-like
// inter-region protocol additionally carries the speaker's region number,
// mirroring the original EGP's autonomous-system field.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/byte_buffer.h"
#include "util/ip_address.h"

namespace catenet::routing {

struct RouteEntry {
    util::Ipv4Prefix prefix;
    std::uint32_t metric = 0;
};

struct DvMessage {
    std::vector<RouteEntry> entries;
};

struct EgpMessage {
    std::uint16_t region = 0;
    std::vector<RouteEntry> entries;
};

util::ByteBuffer encode_dv(const DvMessage& msg);
std::optional<DvMessage> decode_dv(std::span<const std::uint8_t> wire);

util::ByteBuffer encode_egp(const EgpMessage& msg);
std::optional<EgpMessage> decode_egp(std::span<const std::uint8_t> wire);

}  // namespace catenet::routing
