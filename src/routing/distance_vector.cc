#include "routing/distance_vector.h"

#include <algorithm>

#include "ip/protocols.h"

namespace catenet::routing {

DistanceVector::DistanceVector(ip::IpStack& stack, DvConfig config)
    : stack_(stack),
      config_(config),
      update_timer_(stack.simulator(), [this] { broadcast_update(); }),
      expiry_timer_(stack.simulator(), [this] { expire_routes(); }),
      triggered_timer_(stack.simulator(), [this] { broadcast_update(); }) {
    stack_.register_protocol(
        ip::kProtoDistanceVector,
        [this](const ip::Ipv4Header& h, std::span<const std::uint8_t> p, std::size_t ifindex) {
            on_message(h, p, ifindex);
        });
}

void DistanceVector::start() {
    running_ = true;
    if (!observers_registered_) {
        observers_registered_ = true;
        // Carrier loss invalidates learned routes immediately (and, with
        // triggered updates, pushes the bad news out at once) — stale
        // routes must not linger for a full timeout when the hardware
        // already knows the path is dead.
        for (std::size_t i = 0; i < stack_.interface_count(); ++i) {
            stack_.interface(i).add_state_observer([this, i](bool up) {
                if (!up) on_interface_down(i);
            });
        }
    }
    update_timer_.start(config_.period, /*start_immediately=*/true);
    expiry_timer_.start(config_.period);
}

// Removes a learned route and marks it poisoned so the withdrawal is
// advertised (silent removal would leave neighbors holding the route
// until their own timeouts).
void DistanceVector::invalidate(const util::Ipv4Prefix& prefix) {
    stack_.routing_table().remove(prefix);
    poisoned_[prefix] = stack_.simulator().now() + config_.period * 3;
    ++stats_.routes_expired;
}

void DistanceVector::on_interface_down(std::size_t ifindex) {
    if (!running_ || stack_.is_down()) return;
    bool changed = false;
    for (auto it = learned_.begin(); it != learned_.end();) {
        if (it->second.ifindex == ifindex) {
            invalidate(it->first);
            it = learned_.erase(it);
            changed = true;
        } else {
            ++it;
        }
    }
    if (changed) note_change();
}

void DistanceVector::stop() {
    running_ = false;
    update_timer_.stop();
    expiry_timer_.stop();
    triggered_timer_.cancel();
}

void DistanceVector::note_change() {
    last_change_ = stack_.simulator().now();
    if (running_ && config_.triggered_updates && !triggered_timer_.pending()) {
        // Small fixed delay batches a burst of changes into one update.
        triggered_timer_.schedule(sim::milliseconds(50));
    }
}

std::vector<RouteEntry> DistanceVector::build_entries(std::size_t out_ifindex) const {
    std::vector<RouteEntry> entries;
    for (const auto& route : stack_.routing_table().routes()) {
        if (route.origin != "connected" && route.origin != "dv" && route.origin != "static") {
            continue;  // egp routes are redistributed via the export hook
        }
        // A route whose egress interface is dead is unusable: withdraw it
        // (advertise at infinity) so neighbors fail over promptly.
        const bool egress_up = route.ifindex < stack_.interface_count() &&
                               stack_.interface(route.ifindex).is_up();
        std::uint32_t metric =
            egress_up ? std::min(route.metric, config_.infinity) : config_.infinity;
        if (config_.split_horizon && route.origin == "dv" && route.ifindex == out_ifindex) {
            metric = config_.infinity;  // poisoned reverse
        }
        entries.push_back(RouteEntry{route.prefix, metric});
    }
    if (export_hook_) {
        for (const auto& extra : export_hook_()) entries.push_back(extra);
    }
    // Withdrawals: advertise recently invalidated prefixes at infinity.
    for (const auto& [prefix, deadline] : poisoned_) {
        entries.push_back(RouteEntry{prefix, config_.infinity});
    }
    return entries;
}

void DistanceVector::broadcast_update() {
    if (!running_ || stack_.is_down()) return;
    for (std::size_t i = 0; i < stack_.interface_count(); ++i) {
        if (disabled_ifaces_.contains(i)) continue;
        DvMessage msg;
        msg.entries = build_entries(i);
        if (msg.entries.empty()) continue;
        const auto wire = encode_dv(msg);
        if (stack_.send_broadcast(ip::kProtoDistanceVector, i, wire)) {
            ++stats_.updates_sent;
        }
    }
}

void DistanceVector::on_message(const ip::Ipv4Header& header,
                                std::span<const std::uint8_t> payload, std::size_t ifindex) {
    if (!running_ || stack_.is_down()) return;
    if (disabled_ifaces_.contains(ifindex)) return;
    // Ignore our own broadcasts echoed back on a LAN.
    if (stack_.is_local_address(header.src)) return;
    auto msg = decode_dv(payload);
    if (!msg) return;
    ++stats_.updates_received;

    const sim::Time now = stack_.simulator().now();
    for (const auto& entry : msg->entries) {
        const std::uint32_t metric =
            std::min(entry.metric + 1, config_.infinity);

        // Never override connected or static routes.
        auto existing = stack_.routing_table().find(entry.prefix);
        if (existing && existing->origin != "dv") continue;

        auto it = learned_.find(entry.prefix);
        const bool from_current_next_hop =
            it != learned_.end() && it->second.from == header.src;

        if (metric >= config_.infinity) {
            // Poison: if it came from our next hop, the route is dead —
            // and we pass the bad news along.
            if (from_current_next_hop) {
                learned_.erase(it);
                invalidate(entry.prefix);
                note_change();
            }
            continue;
        }

        const bool better = !existing || metric < existing->metric;
        if (from_current_next_hop || better) {
            poisoned_.erase(entry.prefix);  // resurrection cancels the poison
            const bool changed = !existing || existing->metric != metric ||
                                 existing->next_hop != header.src;
            ip::Route route;
            route.prefix = entry.prefix;
            route.next_hop = header.src;
            route.ifindex = ifindex;
            route.metric = metric;
            route.origin = "dv";
            stack_.routing_table().install(route);
            learned_[entry.prefix] =
                Learned{ifindex, header.src, metric, now + config_.route_timeout};
            if (changed) {
                ++stats_.routes_learned;
                note_change();
            }
        }
    }
}

void DistanceVector::expire_routes() {
    const sim::Time now = stack_.simulator().now();
    bool changed = false;
    for (auto it = learned_.begin(); it != learned_.end();) {
        if (it->second.expires <= now) {
            invalidate(it->first);
            it = learned_.erase(it);
            changed = true;
        } else {
            ++it;
        }
    }
    for (auto it = poisoned_.begin(); it != poisoned_.end();) {
        if (it->second <= now) {
            it = poisoned_.erase(it);
        } else {
            ++it;
        }
    }
    if (changed) note_change();
}

}  // namespace catenet::routing
