// Byte-buffer utilities: growable buffers plus big-endian (network byte
// order) readers and writers used by every wire codec in the library.
//
// All multi-byte integers on the wire are big-endian, per RFC 791 / RFC 793.
// The reader throws util::DecodeError on truncated input so that corrupted
// or short packets surface as a single, catchable failure mode.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace catenet::util {

/// Raw octet storage for packets and protocol messages.
using ByteBuffer = std::vector<std::uint8_t>;

/// Error thrown when decoding runs past the end of a buffer or a field
/// holds an impossible value. Protocol code treats this as "drop packet".
class DecodeError : public std::runtime_error {
public:
    explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Serializes integers and byte ranges in network byte order, appending to
/// an internal buffer. `take()` moves the result out.
class BufferWriter {
public:
    BufferWriter() = default;
    /// Pre-reserve `expected_size` bytes to avoid reallocation on hot paths.
    explicit BufferWriter(std::size_t expected_size) { buf_.reserve(expected_size); }

    void put_u8(std::uint8_t v) { buf_.push_back(v); }
    void put_u16(std::uint16_t v);
    void put_u32(std::uint32_t v);
    void put_u64(std::uint64_t v);
    void put_bytes(std::span<const std::uint8_t> bytes);

    /// Writes `count` zero octets (padding / reserved fields).
    void put_zero(std::size_t count);

    /// Overwrites two bytes at `offset` (used to patch checksums after the
    /// fact). Throws std::out_of_range unless `offset + 2` is within the
    /// current size.
    void patch_u16(std::size_t offset, std::uint16_t v);

    std::size_t size() const noexcept { return buf_.size(); }
    const ByteBuffer& data() const noexcept { return buf_; }
    ByteBuffer take() { return std::move(buf_); }

private:
    ByteBuffer buf_;
};

/// Deserializes integers and byte ranges in network byte order from a
/// non-owning view. Throws DecodeError on truncation.
class BufferReader {
public:
    explicit BufferReader(std::span<const std::uint8_t> data) : data_(data) {}

    std::uint8_t get_u8();
    std::uint16_t get_u16();
    std::uint32_t get_u32();
    std::uint64_t get_u64();

    /// Returns a view of the next `count` bytes and advances past them.
    std::span<const std::uint8_t> get_bytes(std::size_t count);

    /// Skips `count` bytes (e.g. options we do not interpret).
    void skip(std::size_t count);

    /// Returns a view of everything not yet consumed without advancing.
    std::span<const std::uint8_t> remaining() const noexcept { return data_.subspan(pos_); }

    std::size_t remaining_size() const noexcept { return data_.size() - pos_; }
    std::size_t position() const noexcept { return pos_; }
    bool at_end() const noexcept { return pos_ == data_.size(); }

private:
    void require(std::size_t count) const;

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

/// Convenience: copies a span into a fresh ByteBuffer.
ByteBuffer to_buffer(std::span<const std::uint8_t> bytes);

/// Convenience: builds a ByteBuffer from a string's bytes (for tests and
/// example applications).
ByteBuffer buffer_from_string(const std::string& s);

/// Convenience: interprets a buffer's bytes as text.
std::string string_from_buffer(std::span<const std::uint8_t> bytes);

}  // namespace catenet::util
