#include "util/ip_address.h"

#include <charconv>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace catenet::util {

namespace {

// Parses a decimal integer in [0, max] from [begin, end); returns the
// position one past the last digit consumed. Throws on failure.
const char* parse_component(const char* begin, const char* end, long max, long& out,
                            const std::string& context) {
    auto [ptr, ec] = std::from_chars(begin, end, out);
    if (ec != std::errc{} || ptr == begin || out < 0 || out > max) {
        throw std::invalid_argument("bad component in '" + context + "'");
    }
    return ptr;
}

}  // namespace

Ipv4Address Ipv4Address::parse(const std::string& dotted) {
    const char* p = dotted.data();
    const char* end = p + dotted.size();
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
        long component = 0;
        p = parse_component(p, end, 255, component, dotted);
        value = (value << 8) | static_cast<std::uint32_t>(component);
        if (i < 3) {
            if (p == end || *p != '.') {
                throw std::invalid_argument("expected '.' in '" + dotted + "'");
            }
            ++p;
        }
    }
    if (p != end) {
        throw std::invalid_argument("trailing characters in '" + dotted + "'");
    }
    return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
    std::ostringstream os;
    os << ((addr_ >> 24) & 0xff) << '.' << ((addr_ >> 16) & 0xff) << '.'
       << ((addr_ >> 8) & 0xff) << '.' << (addr_ & 0xff);
    return os.str();
}

std::ostream& operator<<(std::ostream& os, Ipv4Address addr) {
    return os << addr.to_string();
}

Ipv4Prefix::Ipv4Prefix(Ipv4Address addr, int length) : len_(length) {
    if (length < 0 || length > 32) {
        throw std::invalid_argument("prefix length out of range: " + std::to_string(length));
    }
    addr_ = Ipv4Address(addr.value() & mask());
}

Ipv4Prefix Ipv4Prefix::parse(const std::string& cidr) {
    auto slash = cidr.find('/');
    if (slash == std::string::npos) {
        throw std::invalid_argument("missing '/' in '" + cidr + "'");
    }
    auto addr = Ipv4Address::parse(cidr.substr(0, slash));
    long len = 0;
    const char* begin = cidr.data() + slash + 1;
    const char* end = cidr.data() + cidr.size();
    if (parse_component(begin, end, 32, len, cidr) != end) {
        throw std::invalid_argument("trailing characters in '" + cidr + "'");
    }
    return Ipv4Prefix(addr, static_cast<int>(len));
}

std::string Ipv4Prefix::to_string() const {
    return addr_.to_string() + "/" + std::to_string(len_);
}

std::ostream& operator<<(std::ostream& os, const Ipv4Prefix& prefix) {
    return os << prefix.to_string();
}

}  // namespace catenet::util
