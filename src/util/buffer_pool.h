// A free list of ByteBuffer capacity. The send path allocates one wire
// buffer per datagram; the receive path destroys one per datagram. In
// steady state those rates match, so recycling the vector's heap block
// between them makes the whole host-to-host datagram cycle allocation-free
// (Clark's cost-effectiveness goal applied to per-packet processing).
//
// The pool holds *capacity*, never contents: acquire() hands back an empty
// buffer (size 0) whose reserve is whatever its previous life left behind,
// and every codec that uses the pool writes its full output before anyone
// reads it. Losing the pool (or never feeding it) costs nothing but fresh
// allocations — it is pure soft state.
#pragma once

#include <cstddef>
#include <vector>

#include "util/byte_buffer.h"

namespace catenet::util {

struct BufferPoolStats {
    std::uint64_t acquires = 0;
    std::uint64_t reuses = 0;    ///< acquires served from the free list
    std::uint64_t recycles = 0;  ///< buffers accepted back
};

class BufferPool {
public:
    /// Caps how many retired buffers the pool keeps. Beyond it, recycled
    /// buffers are simply freed — the pool bounds memory, not correctness.
    explicit BufferPool(std::size_t max_pooled = 128) : max_pooled_(max_pooled) {
        // Reserving up front keeps recycle() genuinely non-allocating (and
        // honestly noexcept): the free list itself never grows afterwards.
        free_.reserve(max_pooled_);
    }

    /// Returns an empty buffer with at least `capacity_hint` reserved,
    /// reusing a retired buffer's allocation when one is available.
    ///
    /// Selection is first-fit from the most recently recycled end: traffic
    /// mixes buffer sizes (40-byte ACKs between 1500-byte data segments),
    /// and blindly taking the newest buffer would regrow a small one for a
    /// large request — an allocation the pool exists to avoid. The scan is
    /// O(1) when the newest buffer fits (homogeneous traffic) and bounded
    /// by max_pooled otherwise; only when nothing pooled is big enough does
    /// the reserve below actually allocate.
    ByteBuffer acquire(std::size_t capacity_hint) {
        ++stats_.acquires;
        if (!free_.empty()) {
            ++stats_.reuses;
            std::size_t pick = free_.size() - 1;
            if (free_[pick].capacity() < capacity_hint) {
                for (std::size_t i = free_.size(); i-- > 0;) {
                    if (free_[i].capacity() >= capacity_hint) {
                        pick = i;
                        break;
                    }
                }
            }
            ByteBuffer b = std::move(free_[pick]);
            free_[pick] = std::move(free_.back());
            free_.pop_back();
            b.clear();
            b.reserve(capacity_hint);
            return b;
        }
        ByteBuffer b;
        b.reserve(capacity_hint);
        return b;
    }

    /// Returns a pooled buffer of *any* capacity — the newest one — or an
    /// empty buffer when the pool is dry, never allocating either way. The
    /// boundary-channel handoff uses this to deposit a retired buffer into
    /// a ring slot as it pops a packet out: any carcass will do, because
    /// the capacity is headed for a *different* shard's pool (see
    /// util/spsc_ring.h on swap-based transfer).
    ByteBuffer take_any() noexcept {
        if (free_.empty()) return {};
        ByteBuffer b = std::move(free_.back());
        free_.pop_back();
        return b;
    }

    /// Donates a retired buffer's capacity. Empty (capacity-less) buffers —
    /// including moved-from ones — are ignored, so callers may recycle
    /// unconditionally at every packet-retirement point.
    void recycle(ByteBuffer&& buffer) noexcept {
        if (buffer.capacity() == 0 || free_.size() >= max_pooled_) return;
        ++stats_.recycles;
        free_.push_back(std::move(buffer));
    }

    std::size_t pooled() const noexcept { return free_.size(); }
    const BufferPoolStats& stats() const noexcept { return stats_; }

private:
    std::vector<ByteBuffer> free_;
    std::size_t max_pooled_;
    BufferPoolStats stats_;
};

}  // namespace catenet::util
