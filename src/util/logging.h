// Minimal leveled logger. Off (Warn) by default so simulations stay quiet;
// tests and debugging sessions can raise the level per run. Emission is
// line-atomic: each message is assembled into one string and written under
// a mutex, so concurrent shard threads never interleave mid-line. The
// threshold itself is still set once, before threads start.
#pragma once

#include <sstream>
#include <string>

namespace catenet::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global log threshold; messages below it are discarded cheaply.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

/// Emits one line to stderr with a level tag and component name.
void log_line(LogLevel level, const std::string& component, const std::string& message);

/// Stream-style helper: Logger("tcp").info() << "segment sent";
class Logger {
public:
    explicit Logger(std::string component) : component_(std::move(component)) {}

    class Line {
    public:
        Line(LogLevel level, const std::string& component)
            : level_(level), component_(component), enabled_(level >= log_threshold()) {}
        Line(const Line&) = delete;
        Line& operator=(const Line&) = delete;
        ~Line() {
            if (enabled_) log_line(level_, component_, os_.str());
        }
        template <typename T>
        Line& operator<<(const T& v) {
            if (enabled_) os_ << v;
            return *this;
        }

    private:
        LogLevel level_;
        const std::string& component_;
        bool enabled_;
        std::ostringstream os_;
    };

    Line trace() const { return Line(LogLevel::Trace, component_); }
    Line debug() const { return Line(LogLevel::Debug, component_); }
    Line info() const { return Line(LogLevel::Info, component_); }
    Line warn() const { return Line(LogLevel::Warn, component_); }
    Line error() const { return Line(LogLevel::Error, component_); }

private:
    std::string component_;
};

}  // namespace catenet::util
