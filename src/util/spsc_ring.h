// A bounded single-producer single-consumer ring for cross-shard handoff.
// One thread pushes, one thread pops; synchronization is two monotonic
// indices with release/acquire ordering and no locks, CAS loops or fences
// on the data path. Each side keeps a cached copy of the other side's
// index so the steady state touches the shared counters only when its
// cache says the ring might be full (producer) or empty (consumer) — the
// classic Lamport queue with index caching.
//
// push/pop are SWAP-based rather than move-based: the caller's item trades
// places with the slot's current occupant. That is what lets ByteBuffer
// capacity flow *backwards* across a shard boundary: the consumer deposits
// a retired buffer when it pops, the producer harvests that carcass on the
// slot's next lap and recycles it into its own pool — so a one-way packet
// stream does not slowly drain the sending shard's buffer pool (see
// link/boundary.cc).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace catenet::util {

template <typename T>
class SpscRing {
public:
    /// Capacity is rounded up to a power of two (masked indexing).
    explicit SpscRing(std::size_t capacity) {
        std::size_t cap = 1;
        while (cap < capacity) cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    SpscRing(const SpscRing&) = delete;
    SpscRing& operator=(const SpscRing&) = delete;

    std::size_t capacity() const noexcept { return mask_ + 1; }

    /// Producer side. On success swaps `item` with the slot: the slot takes
    /// the caller's value and `item` receives whatever the slot held (a
    /// default-constructed T on the first lap, a consumer deposit after).
    /// Returns false (item untouched) when the ring is full.
    bool push(T& item) {
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        if (tail - head_cache_ > mask_) {
            head_cache_ = head_.load(std::memory_order_acquire);
            if (tail - head_cache_ > mask_) return false;
        }
        std::swap(slots_[tail & mask_], item);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /// Consumer side. On success swaps: `item`'s prior value (the deposit)
    /// stays in the slot for the producer to harvest, and `item` receives
    /// the slot's payload. Returns false (item untouched) when empty.
    bool pop(T& item) {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        if (head == tail_cache_) {
            tail_cache_ = tail_.load(std::memory_order_acquire);
            if (head == tail_cache_) return false;
        }
        std::swap(slots_[head & mask_], item);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /// Consumer-side view; exact for the consumer, a lower bound elsewhere.
    bool empty() const noexcept {
        return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire);
    }

private:
    std::vector<T> slots_;
    std::size_t mask_ = 0;
    // Indices are monotonic (never masked until use), so full/empty are
    // unambiguous without a spare slot. Each hot atomic sits on its own
    // cache line next to the cache of the *other* side's index — the pair
    // a given thread actually touches together.
    alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer writes
    std::uint64_t head_cache_ = 0;                    ///< producer's view of head_
    alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer writes
    std::uint64_t tail_cache_ = 0;                    ///< consumer's view of tail_
};

}  // namespace catenet::util
