// Deterministic random-number generation for simulations. Every scenario
// owns one Rng seeded explicitly; all stochastic models (loss, jitter,
// workload interarrivals) draw from it, so runs are exactly reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace catenet::util {

class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform integer in [lo, hi] inclusive.
    std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
    }

    /// Uniform real in [0, 1).
    double uniform01() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

    /// Bernoulli trial with probability p of returning true.
    bool chance(double p) {
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        return uniform01() < p;
    }

    /// Exponentially distributed value with the given mean.
    double exponential(double mean) {
        return std::exponential_distribution<double>(1.0 / mean)(engine_);
    }

    /// Normally distributed value.
    double normal(double mean, double stddev) {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /// Geometric number of trials until first success (>= 1), capped for safety.
    std::uint64_t geometric(double p);

    /// Derives an independent child generator (e.g. one per traffic source)
    /// so adding a source does not perturb another source's draws.
    Rng fork();

    std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
};

}  // namespace catenet::util
