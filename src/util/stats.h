// Measurement helpers used by tests and benchmarks: streaming summary
// statistics and an exact percentile estimator (stores samples).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace catenet::util {

/// Streaming count/mean/variance/min/max (Welford's algorithm).
///
/// Not internally synchronized — by design. Sharded simulations keep one
/// accumulator per shard (single writer, no hot-path locks or atomics) and
/// combine them with merge() once the shards have joined.
class RunningStats {
public:
    void add(double x);

    /// Folds another accumulator in, as if every sample it saw had been
    /// add()ed here (Chan et al.'s parallel variance combination; exact up
    /// to floating-point rounding).
    void merge(const RunningStats& other) noexcept;

    std::size_t count() const noexcept { return count_; }
    bool empty() const noexcept { return count_ == 0; }
    double mean() const noexcept { return count_ ? mean_ : 0.0; }
    double variance() const noexcept;
    double stddev() const noexcept;
    /// NaN when empty: an accumulator that saw no samples has no extrema,
    /// and a silent 0.0 is indistinguishable from a real observation of
    /// zero. Reports must check empty()/count() and say "no data" instead
    /// (MetricsReport serializes such series as null).
    double min() const noexcept {
        return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
    }
    double max() const noexcept {
        return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
    }
    double sum() const noexcept { return sum_; }

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Stores samples; answers arbitrary percentile queries exactly.
/// Suitable for the sample counts simulations produce (<= millions).
class Percentiles {
public:
    void add(double x) { samples_.push_back(x); }

    /// Appends another estimator's samples (per-shard accumulators merged
    /// at the barrier; queries after a merge see the union).
    void merge(const Percentiles& other);

    std::size_t count() const noexcept { return samples_.size(); }

    /// p in [0, 100]. Returns 0 when empty. Linear interpolation between
    /// order statistics.
    double percentile(double p) const;

    double median() const { return percentile(50.0); }

private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

/// Fixed-width histogram for distribution summaries in bench output.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);

    /// Adds another histogram's counts bucket-by-bucket. Throws
    /// std::invalid_argument unless ranges and bucket counts match.
    void merge(const Histogram& other);

    std::size_t bucket_count() const noexcept { return counts_.size(); }
    std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
    std::uint64_t underflow() const noexcept { return underflow_; }
    std::uint64_t overflow() const noexcept { return overflow_; }
    std::uint64_t total() const noexcept { return total_; }

    /// Renders a compact ASCII bar chart (one line per bucket).
    std::string render(std::size_t width = 40) const;

private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

}  // namespace catenet::util
