// A contiguous power-of-two byte ring for TCP's send and receive buffers.
// The seed kept these as std::deque<std::uint8_t>, which pays a block
// allocation every few hundred bytes of throughput; the ring allocates once
// at connection setup and never again. Because capacity is a power of two,
// positions are free-running 64-bit counters masked on access — no modulo,
// no wrap bookkeeping, and size() is a subtraction.
//
// Readers address bytes by *offset from the front* (TCP: offset from
// snd_una_), so a retransmission is just a peek() at a smaller offset.
// peek() returns at most two spans: the common case is one; a segment that
// straddles the physical wrap point yields two, which is why the TCP encode
// path takes a span pair and the copy count per segment stays ≤ 2.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>

namespace catenet::util {

class RingBuffer {
public:
    /// Two views covering one logical byte range; `second` is empty unless
    /// the range straddles the physical end of the ring.
    struct Spans {
        std::span<const std::uint8_t> first;
        std::span<const std::uint8_t> second;
        std::size_t size() const noexcept { return first.size() + second.size(); }
    };

    /// Capacity is rounded up to a power of two (minimum 1); this is the
    /// only allocation the ring ever performs. The storage is deliberately
    /// left uninitialized (`new[]` without value-init): a default send or
    /// receive window is 64 KiB, and zero-filling two of those per socket
    /// dominated connection setup. No read path can observe the garbage —
    /// peek()/read() only view bytes below tail_, which write() has stored.
    explicit RingBuffer(std::size_t capacity)
        : capacity_(std::bit_ceil(capacity > 0 ? capacity : 1)),
          data_(new std::uint8_t[capacity_]),
          mask_(capacity_ - 1) {}

    std::size_t capacity() const noexcept { return capacity_; }
    std::size_t size() const noexcept { return static_cast<std::size_t>(tail_ - head_); }
    std::size_t free_space() const noexcept { return capacity() - size(); }
    bool empty() const noexcept { return head_ == tail_; }

    /// Appends up to free_space() bytes; returns how many were taken.
    std::size_t write(std::span<const std::uint8_t> bytes) noexcept {
        const std::size_t n = std::min(bytes.size(), free_space());
        if (n == 0) return 0;
        const std::size_t at = static_cast<std::size_t>(tail_) & mask_;
        const std::size_t run = std::min(n, capacity() - at);
        std::memcpy(data_.get() + at, bytes.data(), run);
        if (run < n) std::memcpy(data_.get(), bytes.data() + run, n - run);
        tail_ += n;
        return n;
    }

    /// Drops `n` bytes from the front (n <= size()).
    void consume(std::size_t n) noexcept { head_ += n; }

    /// Views bytes [offset, offset + len) counted from the front, without
    /// consuming them. Precondition: offset + len <= size().
    Spans peek(std::size_t offset, std::size_t len) const noexcept {
        Spans s;
        if (len == 0) return s;
        const std::size_t at = static_cast<std::size_t>(head_ + offset) & mask_;
        const std::size_t run = std::min(len, capacity() - at);
        s.first = {data_.get() + at, run};
        if (run < len) s.second = {data_.get(), len - run};
        return s;
    }

    /// Copies bytes [offset, offset + out.size()) from the front into `out`.
    /// Precondition: offset + out.size() <= size().
    void read(std::size_t offset, std::span<std::uint8_t> out) const noexcept {
        const Spans s = peek(offset, out.size());
        std::memcpy(out.data(), s.first.data(), s.first.size());
        if (!s.second.empty()) {
            std::memcpy(out.data() + s.first.size(), s.second.data(), s.second.size());
        }
    }

    void clear() noexcept { head_ = tail_ = 0; }

private:
    std::size_t capacity_;
    std::unique_ptr<std::uint8_t[]> data_;
    std::size_t mask_;
    // Free-running positions: head_ counts consumed bytes, tail_ written
    // ones. Unsigned wrap at 2^64 is far beyond any simulated transfer and
    // harmless anyway — only the difference and the masked low bits matter.
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
};

}  // namespace catenet::util
