// IPv4 address and prefix value types. Addresses are held in host byte
// order internally and serialized big-endian by the codecs.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace catenet::util {

/// An IPv4 address. Trivially copyable value type.
class Ipv4Address {
public:
    constexpr Ipv4Address() = default;
    constexpr explicit Ipv4Address(std::uint32_t host_order) : addr_(host_order) {}
    constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
        : addr_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

    /// Parses dotted-quad notation; throws std::invalid_argument on bad input.
    static Ipv4Address parse(const std::string& dotted);

    constexpr std::uint32_t value() const noexcept { return addr_; }
    constexpr bool is_unspecified() const noexcept { return addr_ == 0; }

    std::string to_string() const;

    friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

private:
    std::uint32_t addr_ = 0;
};

std::ostream& operator<<(std::ostream& os, Ipv4Address addr);

/// A CIDR prefix: address plus mask length. Used by routing tables.
class Ipv4Prefix {
public:
    constexpr Ipv4Prefix() = default;
    /// Throws std::invalid_argument if `length > 32`. The address is
    /// canonicalized (host bits cleared).
    Ipv4Prefix(Ipv4Address addr, int length);

    /// Parses "a.b.c.d/len".
    static Ipv4Prefix parse(const std::string& cidr);

    constexpr Ipv4Address address() const noexcept { return addr_; }
    constexpr int length() const noexcept { return len_; }
    constexpr std::uint32_t mask() const noexcept {
        return len_ == 0 ? 0u : ~std::uint32_t{0} << (32 - len_);
    }

    /// True if `addr` falls inside this prefix.
    constexpr bool contains(Ipv4Address addr) const noexcept {
        return (addr.value() & mask()) == addr_.value();
    }

    std::string to_string() const;

    friend constexpr auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) = default;

private:
    Ipv4Address addr_;
    int len_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Ipv4Prefix& prefix);

}  // namespace catenet::util

template <>
struct std::hash<catenet::util::Ipv4Address> {
    std::size_t operator()(catenet::util::Ipv4Address a) const noexcept {
        return std::hash<std::uint32_t>{}(a.value());
    }
};
