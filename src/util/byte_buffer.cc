#include "util/byte_buffer.h"

namespace catenet::util {

void BufferWriter::put_u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void BufferWriter::put_u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    buf_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void BufferWriter::put_u64(std::uint64_t v) {
    put_u32(static_cast<std::uint32_t>(v >> 32));
    put_u32(static_cast<std::uint32_t>(v & 0xffffffffu));
}

void BufferWriter::put_bytes(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void BufferWriter::put_zero(std::size_t count) {
    buf_.insert(buf_.end(), count, 0);
}

void BufferWriter::patch_u16(std::size_t offset, std::uint16_t v) {
    // Overflow-safe form: `offset + 2 > size()` wraps for offsets near
    // SIZE_MAX and would wave an out-of-range patch through to UB.
    if (buf_.size() < 2 || offset > buf_.size() - 2) {
        throw std::out_of_range("BufferWriter::patch_u16 past end: offset " +
                                std::to_string(offset) + ", size " +
                                std::to_string(buf_.size()));
    }
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v & 0xff);
}

void BufferReader::require(std::size_t count) const {
    if (pos_ + count > data_.size()) {
        throw DecodeError("truncated buffer: need " + std::to_string(count) +
                          " bytes at offset " + std::to_string(pos_) + ", have " +
                          std::to_string(data_.size() - pos_));
    }
}

std::uint8_t BufferReader::get_u8() {
    require(1);
    return data_[pos_++];
}

std::uint16_t BufferReader::get_u16() {
    require(2);
    auto v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
}

std::uint32_t BufferReader::get_u32() {
    require(4);
    std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                      (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                      static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
}

std::uint64_t BufferReader::get_u64() {
    std::uint64_t hi = get_u32();
    std::uint64_t lo = get_u32();
    return (hi << 32) | lo;
}

std::span<const std::uint8_t> BufferReader::get_bytes(std::size_t count) {
    require(count);
    auto view = data_.subspan(pos_, count);
    pos_ += count;
    return view;
}

void BufferReader::skip(std::size_t count) {
    require(count);
    pos_ += count;
}

ByteBuffer to_buffer(std::span<const std::uint8_t> bytes) {
    return ByteBuffer(bytes.begin(), bytes.end());
}

ByteBuffer buffer_from_string(const std::string& s) {
    return ByteBuffer(s.begin(), s.end());
}

std::string string_from_buffer(std::span<const std::uint8_t> bytes) {
    return std::string(bytes.begin(), bytes.end());
}

}  // namespace catenet::util
