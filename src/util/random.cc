#include "util/random.h"

#include <algorithm>

namespace catenet::util {

std::uint64_t Rng::geometric(double p) {
    p = std::clamp(p, 1e-12, 1.0);
    return 1 + static_cast<std::uint64_t>(
                   std::geometric_distribution<std::uint64_t>(p)(engine_));
}

Rng Rng::fork() {
    // Draw a fresh seed; the child stream is independent of subsequent
    // draws from this generator.
    return Rng(engine_());
}

}  // namespace catenet::util
