// The Internet checksum (RFC 1071): 16-bit one's-complement sum of
// one's-complement 16-bit words. Used by the IPv4 header, ICMP, UDP and
// TCP codecs. Implemented exactly as specified so that bit-flip corruption
// injected by the link layer is genuinely detected (or, for unlucky flips,
// genuinely missed — the same blind spots real networks have).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

#include "util/ip_address.h"

namespace catenet::util {

/// Incremental one's-complement sum. Feed any number of byte ranges, then
/// call `finish()` for the checksum value to place in the packet.
/// Defined inline: every forwarded datagram sums its header on receive and
/// every encode sums it on send, so the common 20-byte case must compile
/// to straight-line code at the call site.
class ChecksumAccumulator {
public:
    /// Adds a byte range. Ranges may be fed in any chunking as long as each
    /// chunk except the last has even length (standard RFC 1071 property).
    void add(std::span<const std::uint8_t> bytes) {
        // Two RFC 1071 techniques combined, because this loop is the single
        // hottest code in the TCP data path (one full pass per segment per
        // direction):
        //
        // §2(B) byte-order independence: the one's-complement sum is
        // preserved under byte swapping — swap16(a +' b) = swap16(a) +'
        // swap16(b), since a byte swap is a rotation and the end-around
        // carry makes one's-complement addition rotation-invariant. So the
        // bulk loop loads 64-bit words in NATIVE order (no per-word bswap),
        // and the folded 16-bit subtotal is swapped once at the end.
        //
        // §2(A) deferred carries, wider than 16 bits: 64-bit words are
        // summed into independent accumulators with explicit end-around
        // carry (2^64 ≡ 1 mod 2^16-1, so a wrapped carry re-enters at bit
        // 0). Four parallel chains break the loop-carried dependency, so
        // the loop retires 32 bytes per iteration at roughly one add per
        // cycle per chain.
        const std::uint8_t* p = bytes.data();
        const std::size_t n = bytes.size();
        std::size_t i = 0;
        std::uint64_t le = 0;  // subtotal in native (byte-swapped) order
        if (n >= 32) {
            std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
            std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
            for (; i + 32 <= n; i += 32) {
                std::uint64_t w0, w1, w2, w3;
                std::memcpy(&w0, p + i, 8);
                std::memcpy(&w1, p + i + 8, 8);
                std::memcpy(&w2, p + i + 16, 8);
                std::memcpy(&w3, p + i + 24, 8);
                s0 += w0;
                c0 += (s0 < w0);
                s1 += w1;
                c1 += (s1 < w1);
                s2 += w2;
                c2 += (s2 < w2);
                s3 += w3;
                c3 += (s3 < w3);
            }
            le += (s0 >> 32) + (s0 & 0xffffffffu) + c0;
            le += (s1 >> 32) + (s1 & 0xffffffffu) + c1;
            le += (s2 >> 32) + (s2 & 0xffffffffu) + c2;
            le += (s3 >> 32) + (s3 & 0xffffffffu) + c3;
        }
        for (; i + 8 <= n; i += 8) {
            std::uint64_t w;
            std::memcpy(&w, p + i, 8);
            le += (w >> 32) + (w & 0xffffffffu);
        }
        for (; i + 1 < n; i += 2) {
            std::uint16_t w;
            std::memcpy(&w, p + i, 2);
            le += w;
        }
        if (i < n) {
            // Odd trailing byte: the wire word is (byte << 8); in the
            // swapped domain that is the plain byte value.
            if constexpr (std::endian::native == std::endian::little) {
                le += p[i];
            } else {
                le += static_cast<std::uint32_t>(p[i]) << 8;
            }
        }
        while (le >> 16) {
            le = (le & 0xffff) + (le >> 16);
        }
        if constexpr (std::endian::native == std::endian::little) {
            le = static_cast<std::uint16_t>((le << 8) | (le >> 8));
        }
        sum_ += le;
    }

    /// Fused copy + sum: memcpy(dst, src, n) while folding the copied
    /// bytes into the running sum in the same pass — the GSO split's way
    /// of paying one payload traversal instead of two. Same chunking rule
    /// as add(): every chunk except the last must have even length.
    /// Produces the identical sum to memcpy-then-add (the arithmetic only
    /// sees the byte values).
    void add_copy(std::uint8_t* dst, std::span<const std::uint8_t> bytes) {
        const std::uint8_t* p = bytes.data();
        const std::size_t n = bytes.size();
        std::size_t i = 0;
        std::uint64_t le = 0;
        if (n >= 32) {
            std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
            std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
            for (; i + 32 <= n; i += 32) {
                std::uint64_t w0, w1, w2, w3;
                std::memcpy(&w0, p + i, 8);
                std::memcpy(&w1, p + i + 8, 8);
                std::memcpy(&w2, p + i + 16, 8);
                std::memcpy(&w3, p + i + 24, 8);
                std::memcpy(dst + i, &w0, 8);
                std::memcpy(dst + i + 8, &w1, 8);
                std::memcpy(dst + i + 16, &w2, 8);
                std::memcpy(dst + i + 24, &w3, 8);
                s0 += w0;
                c0 += (s0 < w0);
                s1 += w1;
                c1 += (s1 < w1);
                s2 += w2;
                c2 += (s2 < w2);
                s3 += w3;
                c3 += (s3 < w3);
            }
            le += (s0 >> 32) + (s0 & 0xffffffffu) + c0;
            le += (s1 >> 32) + (s1 & 0xffffffffu) + c1;
            le += (s2 >> 32) + (s2 & 0xffffffffu) + c2;
            le += (s3 >> 32) + (s3 & 0xffffffffu) + c3;
        }
        for (; i + 8 <= n; i += 8) {
            std::uint64_t w;
            std::memcpy(&w, p + i, 8);
            std::memcpy(dst + i, &w, 8);
            le += (w >> 32) + (w & 0xffffffffu);
        }
        for (; i + 1 < n; i += 2) {
            std::uint16_t w;
            std::memcpy(&w, p + i, 2);
            std::memcpy(dst + i, &w, 2);
            le += w;
        }
        if (i < n) {
            dst[i] = p[i];
            if constexpr (std::endian::native == std::endian::little) {
                le += p[i];
            } else {
                le += static_cast<std::uint32_t>(p[i]) << 8;
            }
        }
        while (le >> 16) {
            le = (le & 0xffff) + (le >> 16);
        }
        if constexpr (std::endian::native == std::endian::little) {
            le = static_cast<std::uint16_t>((le << 8) | (le >> 8));
        }
        sum_ += le;
    }

    /// Adds a single 16-bit value in host order.
    void add_u16(std::uint16_t v) { sum_ += v; }

    /// Adds a 32-bit value as two 16-bit words (for pseudo-headers).
    void add_u32(std::uint32_t v) {
        add_u16(static_cast<std::uint16_t>(v >> 16));
        add_u16(static_cast<std::uint16_t>(v & 0xffff));
    }

    /// Folds carries and returns the one's complement of the sum.
    std::uint16_t finish() const {
        std::uint64_t s = sum_;
        while (s >> 16) {
            s = (s & 0xffff) + (s >> 16);
        }
        return static_cast<std::uint16_t>(~s & 0xffff);
    }

private:
    std::uint64_t sum_ = 0;
};

/// One-shot checksum of a byte range.
inline std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) {
    ChecksumAccumulator acc;
    acc.add(bytes);
    return acc.finish();
}

/// Verifies a buffer whose checksum field is already in place: the sum of
/// the whole buffer (including the checksum) must fold to 0.
inline bool checksum_valid(std::span<const std::uint8_t> bytes) {
    // A buffer containing a correct checksum sums (one's complement) to
    // 0xffff, so the folded complement is zero.
    return internet_checksum(bytes) == 0;
}

/// Incremental update per RFC 1624 eqn. 3: given a buffer's checksum and
/// one 16-bit word changing from `old_word` to `new_word`, returns the new
/// checksum — HC' = ~(~HC + ~m + m') — without re-reading the buffer.
/// Matches a full RFC 1071 recompute bit-for-bit (including the
/// 0x0000/0xffff representations), provided the input checksum was itself
/// correct for the old contents.
std::uint16_t checksum_update_u16(std::uint16_t checksum, std::uint16_t old_word,
                                  std::uint16_t new_word);

/// Checksum for TCP/UDP: includes the RFC 793/768 pseudo-header of source
/// address, destination address, protocol and segment length. Inline for
/// the same reason as the accumulator itself: the TCP codec runs this once
/// per segment in both directions, and folding the pseudo-header words into
/// the word-at-a-time RFC 1071 loop at the call site costs nothing extra.
inline std::uint16_t transport_checksum(Ipv4Address src, Ipv4Address dst,
                                        std::uint8_t protocol,
                                        std::span<const std::uint8_t> segment) {
    ChecksumAccumulator acc;
    acc.add_u32(src.value());
    acc.add_u32(dst.value());
    acc.add_u16(protocol);  // zero byte + protocol
    acc.add_u16(static_cast<std::uint16_t>(segment.size()));
    acc.add(segment);
    return acc.finish();
}

}  // namespace catenet::util
