// The Internet checksum (RFC 1071): 16-bit one's-complement sum of
// one's-complement 16-bit words. Used by the IPv4 header, ICMP, UDP and
// TCP codecs. Implemented exactly as specified so that bit-flip corruption
// injected by the link layer is genuinely detected (or, for unlucky flips,
// genuinely missed — the same blind spots real networks have).
#pragma once

#include <cstdint>
#include <span>

#include "util/ip_address.h"

namespace catenet::util {

/// Incremental one's-complement sum. Feed any number of byte ranges, then
/// call `finish()` for the checksum value to place in the packet.
class ChecksumAccumulator {
public:
    /// Adds a byte range. Ranges may be fed in any chunking as long as each
    /// chunk except the last has even length (standard RFC 1071 property).
    void add(std::span<const std::uint8_t> bytes);

    /// Adds a single 16-bit value in host order.
    void add_u16(std::uint16_t v) { sum_ += v; }

    /// Adds a 32-bit value as two 16-bit words (for pseudo-headers).
    void add_u32(std::uint32_t v) {
        add_u16(static_cast<std::uint16_t>(v >> 16));
        add_u16(static_cast<std::uint16_t>(v & 0xffff));
    }

    /// Folds carries and returns the one's complement of the sum.
    std::uint16_t finish() const;

private:
    std::uint64_t sum_ = 0;
};

/// One-shot checksum of a byte range.
std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes);

/// Verifies a buffer whose checksum field is already in place: the sum of
/// the whole buffer (including the checksum) must fold to 0.
bool checksum_valid(std::span<const std::uint8_t> bytes);

/// Checksum for TCP/UDP: includes the RFC 793/768 pseudo-header of source
/// address, destination address, protocol and segment length.
std::uint16_t transport_checksum(Ipv4Address src, Ipv4Address dst,
                                 std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment);

}  // namespace catenet::util
