// The Internet checksum (RFC 1071): 16-bit one's-complement sum of
// one's-complement 16-bit words. Used by the IPv4 header, ICMP, UDP and
// TCP codecs. Implemented exactly as specified so that bit-flip corruption
// injected by the link layer is genuinely detected (or, for unlucky flips,
// genuinely missed — the same blind spots real networks have).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

#include "util/ip_address.h"

namespace catenet::util {

/// Incremental one's-complement sum. Feed any number of byte ranges, then
/// call `finish()` for the checksum value to place in the packet.
/// Defined inline: every forwarded datagram sums its header on receive and
/// every encode sums it on send, so the common 20-byte case must compile
/// to straight-line code at the call site.
class ChecksumAccumulator {
public:
    /// Adds a byte range. Ranges may be fed in any chunking as long as each
    /// chunk except the last has even length (standard RFC 1071 property).
    void add(std::span<const std::uint8_t> bytes) {
        // Word-at-a-time per RFC 1071 §2(A) "deferred carries": the
        // one's-complement sum of 16-bit words can be computed by summing
        // wider words in a still-wider accumulator and folding once at the
        // end. Each 8-byte chunk is loaded, normalized to big-endian so the
        // 16-bit columns line up with the wire words, and added as two
        // 32-bit halves — each at most 2^32-1, so the 64-bit accumulator
        // has room for billions of chunks before finish() folds the
        // carries back.
        std::size_t i = 0;
        const std::size_t n = bytes.size();
        for (; i + 8 <= n; i += 8) {
            std::uint64_t chunk;
            std::memcpy(&chunk, bytes.data() + i, 8);
            if constexpr (std::endian::native == std::endian::little) {
                chunk = __builtin_bswap64(chunk);  // std::byteswap is C++23
            }
            sum_ += (chunk >> 32) + (chunk & 0xffffffffu);
        }
        for (; i + 1 < n; i += 2) {
            sum_ += static_cast<std::uint16_t>((bytes[i] << 8) | bytes[i + 1]);
        }
        if (i < n) {
            sum_ += static_cast<std::uint16_t>(bytes[i] << 8);
        }
    }

    /// Adds a single 16-bit value in host order.
    void add_u16(std::uint16_t v) { sum_ += v; }

    /// Adds a 32-bit value as two 16-bit words (for pseudo-headers).
    void add_u32(std::uint32_t v) {
        add_u16(static_cast<std::uint16_t>(v >> 16));
        add_u16(static_cast<std::uint16_t>(v & 0xffff));
    }

    /// Folds carries and returns the one's complement of the sum.
    std::uint16_t finish() const {
        std::uint64_t s = sum_;
        while (s >> 16) {
            s = (s & 0xffff) + (s >> 16);
        }
        return static_cast<std::uint16_t>(~s & 0xffff);
    }

private:
    std::uint64_t sum_ = 0;
};

/// One-shot checksum of a byte range.
inline std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) {
    ChecksumAccumulator acc;
    acc.add(bytes);
    return acc.finish();
}

/// Verifies a buffer whose checksum field is already in place: the sum of
/// the whole buffer (including the checksum) must fold to 0.
inline bool checksum_valid(std::span<const std::uint8_t> bytes) {
    // A buffer containing a correct checksum sums (one's complement) to
    // 0xffff, so the folded complement is zero.
    return internet_checksum(bytes) == 0;
}

/// Incremental update per RFC 1624 eqn. 3: given a buffer's checksum and
/// one 16-bit word changing from `old_word` to `new_word`, returns the new
/// checksum — HC' = ~(~HC + ~m + m') — without re-reading the buffer.
/// Matches a full RFC 1071 recompute bit-for-bit (including the
/// 0x0000/0xffff representations), provided the input checksum was itself
/// correct for the old contents.
std::uint16_t checksum_update_u16(std::uint16_t checksum, std::uint16_t old_word,
                                  std::uint16_t new_word);

/// Checksum for TCP/UDP: includes the RFC 793/768 pseudo-header of source
/// address, destination address, protocol and segment length.
std::uint16_t transport_checksum(Ipv4Address src, Ipv4Address dst,
                                 std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment);

}  // namespace catenet::util
