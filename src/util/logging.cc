#include "util/logging.h"

#include <cstdio>
#include <mutex>

namespace catenet::util {

namespace {
LogLevel g_threshold = LogLevel::Warn;

// Serializes whole lines only. Shard threads log concurrently; each line is
// assembled into one contiguous string first (below), so the lock is held
// for a single write and never across formatting.
std::mutex g_log_mutex;

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::Trace: return "TRACE";
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO";
        case LogLevel::Warn: return "WARN";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF";
    }
    return "?";
}
}  // namespace

LogLevel log_threshold() noexcept { return g_threshold; }
void set_log_threshold(LogLevel level) noexcept { g_threshold = level; }

void log_line(LogLevel level, const std::string& component, const std::string& message) {
    // One pre-assembled string, one locked write. The old implementation
    // streamed five separate << operations to std::cerr, so two shards
    // logging at once could interleave mid-line.
    std::string line;
    line.reserve(component.size() + message.size() + 16);
    line += '[';
    line += level_name(level);
    line += "] ";
    line += component;
    line += ": ";
    line += message;
    line += '\n';
    const std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace catenet::util
