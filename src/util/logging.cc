#include "util/logging.h"

#include <iostream>

namespace catenet::util {

namespace {
LogLevel g_threshold = LogLevel::Warn;

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::Trace: return "TRACE";
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO";
        case LogLevel::Warn: return "WARN";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF";
    }
    return "?";
}
}  // namespace

LogLevel log_threshold() noexcept { return g_threshold; }
void set_log_threshold(LogLevel level) noexcept { g_threshold = level; }

void log_line(LogLevel level, const std::string& component, const std::string& message) {
    std::cerr << "[" << level_name(level) << "] " << component << ": " << message << "\n";
}

}  // namespace catenet::util
