#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace catenet::util {

void RunningStats::add(double x) {
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double Percentiles::percentile(double p) const {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    p = std::clamp(p, 0.0, 100.0);
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void Percentiles::merge(const Percentiles& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sorted_ = false;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
    if (!(hi > lo) || buckets == 0) {
        throw std::invalid_argument("Histogram: bad range or bucket count");
    }
}

void Histogram::add(double x) {
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                            static_cast<double>(counts_.size()));
        ++counts_[std::min(idx, counts_.size() - 1)];
    }
}

void Histogram::merge(const Histogram& other) {
    if (other.lo_ != lo_ || other.hi_ != hi_ || other.counts_.size() != counts_.size()) {
        throw std::invalid_argument("Histogram::merge: mismatched shape");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
}

std::string Histogram::render(std::size_t width) const {
    std::uint64_t peak = 1;
    for (auto c : counts_) peak = std::max(peak, c);
    std::ostringstream os;
    const double step = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double bucket_lo = lo_ + step * static_cast<double>(i);
        const auto bar = static_cast<std::size_t>(
            static_cast<double>(counts_[i]) / static_cast<double>(peak) *
            static_cast<double>(width));
        os << "[" << bucket_lo << ", " << bucket_lo + step << ") "
           << std::string(bar, '#') << " " << counts_[i] << "\n";
    }
    return os.str();
}

}  // namespace catenet::util
