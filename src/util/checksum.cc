#include "util/checksum.h"

namespace catenet::util {

void ChecksumAccumulator::add(std::span<const std::uint8_t> bytes) {
    std::size_t i = 0;
    for (; i + 1 < bytes.size(); i += 2) {
        sum_ += static_cast<std::uint16_t>((bytes[i] << 8) | bytes[i + 1]);
    }
    if (i < bytes.size()) {
        sum_ += static_cast<std::uint16_t>(bytes[i] << 8);
    }
}

std::uint16_t ChecksumAccumulator::finish() const {
    std::uint64_t s = sum_;
    while (s >> 16) {
        s = (s & 0xffff) + (s >> 16);
    }
    return static_cast<std::uint16_t>(~s & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) {
    ChecksumAccumulator acc;
    acc.add(bytes);
    return acc.finish();
}

bool checksum_valid(std::span<const std::uint8_t> bytes) {
    // A buffer containing a correct checksum sums (one's complement) to
    // 0xffff, so the folded complement is zero.
    return internet_checksum(bytes) == 0;
}

std::uint16_t transport_checksum(Ipv4Address src, Ipv4Address dst,
                                 std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment) {
    ChecksumAccumulator acc;
    acc.add_u32(src.value());
    acc.add_u32(dst.value());
    acc.add_u16(protocol);  // zero byte + protocol
    acc.add_u16(static_cast<std::uint16_t>(segment.size()));
    acc.add(segment);
    return acc.finish();
}

}  // namespace catenet::util
