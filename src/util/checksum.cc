#include "util/checksum.h"

#include <bit>
#include <cstring>

namespace catenet::util {

void ChecksumAccumulator::add(std::span<const std::uint8_t> bytes) {
    // Word-at-a-time per RFC 1071 §2(A) "deferred carries": the
    // one's-complement sum of 16-bit words can be computed by summing
    // wider words in a still-wider accumulator and folding once at the
    // end. Each 8-byte chunk is loaded, normalized to big-endian so the
    // 16-bit columns line up with the wire words, and added as two 32-bit
    // halves — each at most 2^32-1, so the 64-bit accumulator has room
    // for billions of chunks before finish() folds the carries back.
    std::size_t i = 0;
    const std::size_t n = bytes.size();
    for (; i + 8 <= n; i += 8) {
        std::uint64_t chunk;
        std::memcpy(&chunk, bytes.data() + i, 8);
        if constexpr (std::endian::native == std::endian::little) {
            chunk = __builtin_bswap64(chunk);  // std::byteswap is C++23
        }
        sum_ += (chunk >> 32) + (chunk & 0xffffffffu);
    }
    for (; i + 1 < n; i += 2) {
        sum_ += static_cast<std::uint16_t>((bytes[i] << 8) | bytes[i + 1]);
    }
    if (i < n) {
        sum_ += static_cast<std::uint16_t>(bytes[i] << 8);
    }
}

std::uint16_t ChecksumAccumulator::finish() const {
    std::uint64_t s = sum_;
    while (s >> 16) {
        s = (s & 0xffff) + (s >> 16);
    }
    return static_cast<std::uint16_t>(~s & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) {
    ChecksumAccumulator acc;
    acc.add(bytes);
    return acc.finish();
}

bool checksum_valid(std::span<const std::uint8_t> bytes) {
    // A buffer containing a correct checksum sums (one's complement) to
    // 0xffff, so the folded complement is zero.
    return internet_checksum(bytes) == 0;
}

std::uint16_t transport_checksum(Ipv4Address src, Ipv4Address dst,
                                 std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment) {
    ChecksumAccumulator acc;
    acc.add_u32(src.value());
    acc.add_u32(dst.value());
    acc.add_u16(protocol);  // zero byte + protocol
    acc.add_u16(static_cast<std::uint16_t>(segment.size()));
    acc.add(segment);
    return acc.finish();
}

}  // namespace catenet::util
