#include "util/checksum.h"

namespace catenet::util {

std::uint16_t checksum_update_u16(std::uint16_t checksum, std::uint16_t old_word,
                                  std::uint16_t new_word) {
    // RFC 1624 fixes RFC 1141's -0 bug by complementing *into* the sum:
    // ~HC folds back to the one's-complement sum of the old buffer, the
    // word swap adjusts it, and complementing out cannot yield the +0/-0
    // confusion the subtraction form had.
    std::uint32_t sum = static_cast<std::uint16_t>(~checksum);
    sum += static_cast<std::uint16_t>(~old_word);
    sum += new_word;
    while (sum >> 16) {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    return static_cast<std::uint16_t>(~sum & 0xffff);
}

}  // namespace catenet::util
