// A small-buffer-optimized, move-only callable for the event engine's hot
// path. std::function heap-allocates any capture bigger than two pointers
// (libstdc++) and drags in copy semantics the engine never needs; this type
// stores captures up to kInlineSize bytes inline — sized so every scheduling
// lambda in the library (link transmitters, TCP timers, IP deferred
// delivery) fits — and falls back to the heap only beyond that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace catenet::util {

class InlineCallback {
public:
    /// Inline capture capacity. Large enough for a `this` pointer plus a
    /// link::Packet moved in by value plus a scalar — the largest capture in
    /// the library is a LAN delivery (this + port index + Packet = 64 bytes),
    /// which lets links carry in-flight packets inside the event slot instead
    /// of through a side free list.
    static constexpr std::size_t kInlineSize = 64;

    InlineCallback() noexcept = default;
    InlineCallback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                          std::is_invocable_r_v<void, D&>>>
    InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
        emplace(std::forward<F>(f));
    }

    InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

    InlineCallback& operator=(InlineCallback&& other) noexcept {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    InlineCallback(const InlineCallback&) = delete;
    InlineCallback& operator=(const InlineCallback&) = delete;

    ~InlineCallback() { reset(); }

    void operator()() { ops_->invoke(storage_); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /// True when the callable lives in the inline buffer (no heap node).
    bool is_inline() const noexcept { return ops_ != nullptr && ops_->inline_stored; }

    /// Destroys any stored callable and constructs `f` directly in the
    /// buffer. The scheduling hot path uses this to build the callable
    /// in the event slot itself rather than move-assigning a temporary,
    /// which would cost a relocation pair (move-construct into the
    /// parameter, then again into the slot) per event for non-trivially-
    /// copyable captures like an in-flight Packet.
    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                          std::is_invocable_r_v<void, D&>>>
    void emplace(F&& f) {
        reset();
        if constexpr (fits_inline<D>()) {
            ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
            ops_ = &kInlineOps<D>;
        } else {
            ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
            ops_ = &kHeapOps<D>;
        }
    }

    /// Destroys the stored callable, leaving the callback empty.
    void reset() noexcept {
        if (ops_ != nullptr) {
            if (ops_->destroy != nullptr) ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    /// Compile-time predicate: would a callable of type D be stored inline?
    template <typename D>
    static constexpr bool fits_inline() noexcept {
        return sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

private:
    // relocate/destroy are null for types where a raw memcpy / no-op
    // suffices (trivially copyable captures, and the heap case's stored
    // pointer): the engine's steady state then moves callbacks with one
    // constant-size memcpy and zero indirect calls.
    struct Ops {
        void (*invoke)(void* storage);
        void (*relocate)(void* dst, void* src) noexcept;  // null => memcpy
        void (*destroy)(void* storage) noexcept;          // null => no-op
        bool inline_stored;
    };

    template <typename D>
    static constexpr Ops kInlineOps{
        [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
        std::is_trivially_copyable_v<D>
            ? nullptr
            : +[](void* dst, void* src) noexcept {
                  D* from = std::launder(reinterpret_cast<D*>(src));
                  ::new (dst) D(std::move(*from));
                  from->~D();
              },
        std::is_trivially_destructible_v<D>
            ? nullptr
            : +[](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
        /*inline_stored=*/true,
    };

    template <typename D>
    static constexpr Ops kHeapOps{
        [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
        /*relocate=*/nullptr,  // relocating the owning pointer is a memcpy
        [](void* s) noexcept { delete *std::launder(reinterpret_cast<D**>(s)); },
        /*inline_stored=*/false,
    };

    void move_from(InlineCallback& other) noexcept {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            if (ops_->relocate != nullptr) {
                ops_->relocate(storage_, other.storage_);
            } else {
                std::memcpy(storage_, other.storage_, kInlineSize);
            }
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineSize];
    const Ops* ops_ = nullptr;
};

}  // namespace catenet::util
