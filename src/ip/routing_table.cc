#include "ip/routing_table.h"

#include <algorithm>
#include <bit>
#include <ostream>
#include <stdexcept>
#include <string>

namespace catenet::ip {

namespace {

/// The table's sort key: longer prefixes first, then ascending prefix
/// address. Within one length prefixes are disjoint, so at most one can
/// contain a given destination — first-match iteration over this order IS
/// longest-prefix match.
inline bool key_less(int len_a, std::uint32_t addr_a, int len_b,
                     std::uint32_t addr_b) noexcept {
    if (len_a != len_b) return len_a > len_b;
    return addr_a < addr_b;
}

inline bool route_less(const Route* a, const Route* b) noexcept {
    return key_less(a->prefix.length(), a->prefix.address().value(),
                    b->prefix.length(), b->prefix.address().value());
}

inline std::uint32_t mask_of(int len) noexcept {
    return len == 0 ? 0u : ~std::uint32_t{0} << (32 - len);
}

}  // namespace

RouteOrigin::Tag RouteOrigin::parse(std::string_view name) {
    if (name == "connected") return Tag::Connected;
    if (name == "static") return Tag::Static;
    if (name == "dv") return Tag::Dv;
    if (name == "egp") return Tag::Egp;
    throw std::invalid_argument("unknown route origin: " + std::string(name));
}

std::ostream& operator<<(std::ostream& os, RouteOrigin origin) {
    return os << origin.view();
}

Route* RoutingTable::acquire_node(const Route& route) {
    if (!free_nodes_.empty()) {
        Route* node = free_nodes_.back();
        free_nodes_.pop_back();
        *node = route;
        return node;
    }
    arena_.push_back(route);
    return &arena_.back();
}

void RoutingTable::note_added(int length) noexcept {
    if (++len_count_[static_cast<std::size_t>(length)] == 1) {
        len_mask_ |= std::uint64_t{1} << length;
    }
}

void RoutingTable::note_removed(int length) noexcept {
    if (--len_count_[static_cast<std::size_t>(length)] == 0) {
        len_mask_ &= ~(std::uint64_t{1} << length);
    }
}

std::vector<Route*>::iterator RoutingTable::find_slot(const util::Ipv4Prefix& prefix) {
    const int len = prefix.length();
    const std::uint32_t addr = prefix.address().value();
    auto it = std::lower_bound(ordered_.begin(), ordered_.end(), prefix,
                               [&](const Route* r, const util::Ipv4Prefix&) {
                                   return key_less(r->prefix.length(),
                                                   r->prefix.address().value(), len, addr);
                               });
    if (it != ordered_.end() && (*it)->prefix == prefix) return it;
    return ordered_.end();
}

std::vector<Route*>::const_iterator RoutingTable::find_slot(
    const util::Ipv4Prefix& prefix) const {
    return const_cast<RoutingTable*>(this)->find_slot(prefix);
}

void RoutingTable::install(const Route& route) {
    const int len = route.prefix.length();
    const std::uint32_t addr = route.prefix.address().value();
    auto pos = std::lower_bound(ordered_.begin(), ordered_.end(), route,
                                [&](const Route* r, const Route&) {
                                    return key_less(r->prefix.length(),
                                                    r->prefix.address().value(), len, addr);
                                });
    if (pos != ordered_.end() && (*pos)->prefix == route.prefix) {
        **pos = route;  // in place: interned pointers observe the update
        ++generation_;
        return;
    }
    ordered_.insert(pos, acquire_node(route));
    note_added(len);
    ++generation_;
}

void RoutingTable::bulk_load(std::span<const Route> routes) {
    if (routes.empty()) return;
    // Keep-last dedup within the batch (a later duplicate wins, matching a
    // sequence of install() calls): sort (key, batch index) descending by
    // index within a key, keep the first seen per key.
    std::vector<std::pair<const Route*, std::size_t>> batch;
    batch.reserve(routes.size());
    for (std::size_t i = 0; i < routes.size(); ++i) batch.emplace_back(&routes[i], i);
    std::sort(batch.begin(), batch.end(), [](const auto& x, const auto& y) {
        if (x.first->prefix != y.first->prefix) return route_less(x.first, y.first);
        return x.second > y.second;
    });

    // Search only the pre-batch (still sorted) range while appending: the
    // growing tail is not ordered relative to the head until the merge.
    const std::size_t old_size = ordered_.size();
    auto find_existing = [&](const util::Ipv4Prefix& prefix) -> Route* {
        const int len = prefix.length();
        const std::uint32_t addr = prefix.address().value();
        const auto end = ordered_.begin() + static_cast<std::ptrdiff_t>(old_size);
        auto it = std::lower_bound(ordered_.begin(), end, prefix,
                                   [&](const Route* r, const util::Ipv4Prefix&) {
                                       return key_less(r->prefix.length(),
                                                       r->prefix.address().value(), len,
                                                       addr);
                                   });
        if (it != end && (*it)->prefix == prefix) return *it;
        return nullptr;
    };
    const util::Ipv4Prefix* last = nullptr;
    for (const auto& [route, index] : batch) {
        if (last != nullptr && *last == route->prefix) continue;  // dup: later won
        last = &route->prefix;
        if (Route* existing = find_existing(route->prefix)) {
            *existing = *route;  // replace in place, pointer stability
        } else {
            ordered_.push_back(acquire_node(*route));
            note_added(route->prefix.length());
        }
    }
    // One merge restores the global order: the survivors were appended in
    // key order (batch was sorted), so the tail is already sorted.
    std::inplace_merge(ordered_.begin(),
                       ordered_.begin() + static_cast<std::ptrdiff_t>(old_size),
                       ordered_.end(), route_less);
    ++generation_;
}

bool RoutingTable::remove(const util::Ipv4Prefix& prefix) {
    auto it = find_slot(prefix);
    if (it == ordered_.end()) return false;
    free_nodes_.push_back(*it);
    note_removed(prefix.length());
    ordered_.erase(it);
    ++generation_;
    return true;
}

void RoutingTable::remove_by_origin(std::string_view origin) {
    const std::size_t before = ordered_.size();
    std::erase_if(ordered_, [&](Route* r) {
        if (r->origin != origin) return false;
        free_nodes_.push_back(r);
        note_removed(r->prefix.length());
        return true;
    });
    if (ordered_.size() != before) ++generation_;
}

RouteRef RoutingTable::lookup(util::Ipv4Address dst) const {
    // Probe each populated prefix length, longest first: mask the
    // destination down to that length and binary-search for the exact
    // prefix. First hit is the longest match.
    std::uint64_t mask = len_mask_;
    while (mask != 0) {
        const int len = std::bit_width(mask) - 1;
        mask &= ~(std::uint64_t{1} << len);
        const std::uint32_t key = dst.value() & mask_of(len);
        auto it = std::lower_bound(ordered_.begin(), ordered_.end(), key,
                                   [&](const Route* r, std::uint32_t) {
                                       return key_less(r->prefix.length(),
                                                       r->prefix.address().value(), len, key);
                                   });
        if (it != ordered_.end() && (*it)->prefix.length() == len &&
            (*it)->prefix.address().value() == key) {
            return RouteRef(*it);
        }
    }
    return RouteRef();
}

RouteRef RoutingTable::find(const util::Ipv4Prefix& prefix) const {
    auto it = find_slot(prefix);
    if (it == ordered_.end()) return RouteRef();
    return RouteRef(*it);
}

std::vector<Route> RoutingTable::routes() const {
    std::vector<Route> snapshot;
    snapshot.reserve(ordered_.size());
    for (const Route* r : ordered_) snapshot.push_back(*r);
    return snapshot;
}

}  // namespace catenet::ip
