#include "ip/routing_table.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <string>

namespace catenet::ip {

RouteOrigin::Tag RouteOrigin::parse(std::string_view name) {
    if (name == "connected") return Tag::Connected;
    if (name == "static") return Tag::Static;
    if (name == "dv") return Tag::Dv;
    if (name == "egp") return Tag::Egp;
    throw std::invalid_argument("unknown route origin: " + std::string(name));
}

std::ostream& operator<<(std::ostream& os, RouteOrigin origin) {
    return os << origin.view();
}

Route* RoutingTable::acquire_node(const Route& route) {
    if (!free_nodes_.empty()) {
        Route* node = free_nodes_.back();
        free_nodes_.pop_back();
        *node = route;
        return node;
    }
    arena_.push_back(route);
    return &arena_.back();
}

void RoutingTable::install(const Route& route) {
    auto it = std::find_if(ordered_.begin(), ordered_.end(), [&](const Route* r) {
        return r->prefix == route.prefix;
    });
    if (it != ordered_.end()) {
        **it = route;  // in place: interned pointers observe the update
        ++generation_;
        return;
    }
    // Insert keeping descending-prefix-length order.
    auto pos = std::find_if(ordered_.begin(), ordered_.end(), [&](const Route* r) {
        return r->prefix.length() < route.prefix.length();
    });
    ordered_.insert(pos, acquire_node(route));
    ++generation_;
}

bool RoutingTable::remove(const util::Ipv4Prefix& prefix) {
    auto it = std::find_if(ordered_.begin(), ordered_.end(), [&](const Route* r) {
        return r->prefix == prefix;
    });
    if (it == ordered_.end()) return false;
    free_nodes_.push_back(*it);
    ordered_.erase(it);
    ++generation_;
    return true;
}

void RoutingTable::remove_by_origin(std::string_view origin) {
    const std::size_t before = ordered_.size();
    std::erase_if(ordered_, [&](Route* r) {
        if (r->origin != origin) return false;
        free_nodes_.push_back(r);
        return true;
    });
    if (ordered_.size() != before) ++generation_;
}

RouteRef RoutingTable::lookup(util::Ipv4Address dst) const {
    for (const Route* r : ordered_) {
        if (r->prefix.contains(dst)) return RouteRef(r);
    }
    return RouteRef();
}

RouteRef RoutingTable::find(const util::Ipv4Prefix& prefix) const {
    for (const Route* r : ordered_) {
        if (r->prefix == prefix) return RouteRef(r);
    }
    return RouteRef();
}

std::vector<Route> RoutingTable::routes() const {
    std::vector<Route> snapshot;
    snapshot.reserve(ordered_.size());
    for (const Route* r : ordered_) snapshot.push_back(*r);
    return snapshot;
}

}  // namespace catenet::ip
