#include "ip/routing_table.h"

#include <algorithm>

namespace catenet::ip {

void RoutingTable::install(const Route& route) {
    auto it = std::find_if(routes_.begin(), routes_.end(), [&](const Route& r) {
        return r.prefix == route.prefix;
    });
    if (it != routes_.end()) {
        *it = route;
        return;
    }
    // Insert keeping descending-prefix-length order.
    auto pos = std::find_if(routes_.begin(), routes_.end(), [&](const Route& r) {
        return r.prefix.length() < route.prefix.length();
    });
    routes_.insert(pos, route);
}

bool RoutingTable::remove(const util::Ipv4Prefix& prefix) {
    auto it = std::find_if(routes_.begin(), routes_.end(), [&](const Route& r) {
        return r.prefix == prefix;
    });
    if (it == routes_.end()) return false;
    routes_.erase(it);
    return true;
}

void RoutingTable::remove_by_origin(const std::string& origin) {
    std::erase_if(routes_, [&](const Route& r) { return r.origin == origin; });
}

std::optional<Route> RoutingTable::lookup(util::Ipv4Address dst) const {
    for (const Route& r : routes_) {
        if (r.prefix.contains(dst)) return r;
    }
    return std::nullopt;
}

std::optional<Route> RoutingTable::find(const util::Ipv4Prefix& prefix) const {
    for (const Route& r : routes_) {
        if (r.prefix == prefix) return r;
    }
    return std::nullopt;
}

}  // namespace catenet::ip
