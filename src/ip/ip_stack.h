// The internet layer of one node: datagram send/receive, forwarding,
// fragmentation, reassembly, ICMP. This is the architectural centerpiece:
// a *gateway* in this library is nothing but an IpStack with forwarding
// enabled — it holds a routing table and queues, and deliberately **no
// per-connection state of any kind** (fate-sharing). Crashing one loses
// packets in flight and nothing else; experiments E1/E8 depend on that
// being structurally true, not merely configured.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ip/icmp.h"
#include "ip/ipv4_header.h"
#include "ip/reassembly.h"
#include "ip/routing_table.h"
#include "link/netif.h"
#include "sim/simulator.h"
#include "telemetry/counters.h"
#include "telemetry/record.h"

namespace catenet::ip {

/// The limited-broadcast address; delivered on-link, never forwarded.
inline constexpr util::Ipv4Address kBroadcastAddress{0xffffffffu};

struct IpStats {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_received = 0;
    std::uint64_t delivered_locally = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t dropped_bad_checksum = 0;
    std::uint64_t dropped_malformed = 0;
    std::uint64_t dropped_no_route = 0;
    std::uint64_t dropped_ttl_expired = 0;
    std::uint64_t dropped_iface_down = 0;
    std::uint64_t dropped_not_for_us = 0;
    std::uint64_t fragments_created = 0;
    std::uint64_t icmp_errors_sent = 0;
    std::uint64_t source_quenches_sent = 0;
};

/// Options for an outbound datagram.
struct SendOptions {
    std::uint8_t tos = 0;
    std::uint8_t ttl = 64;
    bool dont_fragment = false;
    /// Unspecified = pick the outgoing interface's address.
    util::Ipv4Address source;
    /// Checksum-offload mark (DESIGN.md §12): the caller vouches that the
    /// transport checksum in the payload was just computed and is correct,
    /// so the non-fragmenting fast path stamps link::Packet::csum_ok and
    /// receivers may skip re-verification. Ignored on the copying paths.
    bool csum_ok = false;
};

class IpStack {
public:
    /// Handler for a protocol's inbound datagrams (payload fully
    /// reassembled). `ifindex` is where the datagram arrived.
    using ProtocolHandler =
        std::function<void(const Ipv4Header&, std::span<const std::uint8_t> payload,
                           std::size_t ifindex)>;

    /// Observer for inbound ICMP errors (delivered in addition to any
    /// registered ICMP protocol handling).
    using IcmpErrorHandler =
        std::function<void(const IcmpMessage&, util::Ipv4Address from)>;

    IpStack(sim::Simulator& sim, std::string name);

    /// Attaches an interface with its address and on-link subnet. Installs
    /// a connected route and begins receiving. Returns the ifindex.
    std::size_t add_interface(link::NetIf& netif, util::Ipv4Address addr,
                              util::Ipv4Prefix subnet);

    std::size_t interface_count() const noexcept { return interfaces_.size(); }
    link::NetIf& interface(std::size_t ifindex) { return *interfaces_.at(ifindex).netif; }
    util::Ipv4Address interface_address(std::size_t ifindex) const {
        return interfaces_.at(ifindex).address;
    }

    /// First interface address — a convenient node identity for hosts.
    util::Ipv4Address primary_address() const;

    /// Hosts: off (default). Gateways: on.
    void set_forwarding(bool on) noexcept { forwarding_ = on; }
    bool forwarding() const noexcept { return forwarding_; }

    /// Node failure injection. A down stack discards everything silently;
    /// bringing it back up clears reassembly buffers (memory lost in the
    /// crash) but keeps the routing table (assumed in stable storage) —
    /// callers can flush_routes() to model losing that too.
    void set_down(bool down);
    bool is_down() const noexcept { return down_; }
    void flush_routes();

    void register_protocol(std::uint8_t protocol, ProtocolHandler handler);

    /// Receive-side run coalescing hook (GRO, DESIGN.md §12). A transport
    /// that implements this is offered checksum-vouched, non-fragment,
    /// locally-addressed datagrams of its protocol straight from the burst
    /// commit pass, one run segment at a time. The handler processes each
    /// accepted segment immediately and completely (data delivery, ACK
    /// clock), so accepting is behaviourally identical to the per-datagram
    /// path — the run only amortizes demux and header prediction.
    class TransportRunHandler {
    public:
        virtual ~TransportRunHandler() = default;
        /// Offers one segment. Return true when it was consumed into the
        /// current run; false to decline, in which case the stack ends any
        /// open run and dispatches the segment via on_datagram() — the
        /// handler must not have counted or mutated anything for it.
        virtual bool on_run_segment(const Ipv4Header& header,
                                    std::span<const std::uint8_t> payload,
                                    std::size_t ifindex) = 0;
        /// The ordinary per-datagram entry, identical to the handler the
        /// transport registered with register_protocol(). The decline path
        /// dispatches here directly (no protocol-map probe).
        virtual void on_datagram(const Ipv4Header& header,
                                 std::span<const std::uint8_t> payload,
                                 std::size_t ifindex) = 0;
        /// Closes the current run: the burst ended, bailed, or a foreign
        /// packet split it. Only called after at least one accepted segment.
        virtual void end_run() = 0;
    };

    /// Registers the run handler for `protocol` (one per stack; the
    /// transport must also register_protocol() the per-datagram handler).
    void register_protocol_run(std::uint8_t protocol, TransportRunHandler* handler) {
        run_protocol_ = protocol;
        run_handler_ = handler;
    }

    /// True while the currently-dispatched inbound datagram carried the
    /// link-layer csum_ok vouch (and is not a fragment): the transport may
    /// skip its own checksum fold, which would provably pass.
    bool rx_csum_ok() const noexcept { return rx_csum_ok_; }

    /// Adds an inbound ICMP-error observer (multiple allowed: transports
    /// and diagnostics both listen).
    void add_icmp_error_handler(IcmpErrorHandler handler) {
        icmp_error_handlers_.push_back(std::move(handler));
    }
    /// Back-compat alias for add_icmp_error_handler.
    void set_icmp_error_handler(IcmpErrorHandler handler) {
        add_icmp_error_handler(std::move(handler));
    }

    /// Gateways: emit ICMP Source Quench to the traffic source when an
    /// egress queue drops a forwarded datagram (RFC 792's congestion
    /// signal, rate-limited). Off by default — it is itself a design
    /// choice the benchmarks ablate.
    void set_source_quench(bool on, sim::Time min_interval = sim::milliseconds(50));

    /// Sends a payload as one datagram (fragmenting as needed for the
    /// egress MTU). Returns false when there is no route or the stack or
    /// egress interface is down — exactly the cases where a real stack
    /// fails synchronously; all other losses are silent, downstream, and
    /// the sender's problem to recover from (end-to-end argument).
    bool send(std::uint8_t protocol, util::Ipv4Address dst,
              std::span<const std::uint8_t> payload, const SendOptions& options = {});

    /// Zero-copy transport hand-off: `wire` already holds kIpv4HeaderSize
    /// bytes of headroom followed by the complete transport segment. The
    /// IPv4 header is written in place over the headroom and the buffer
    /// moves straight to the egress link — no re-serialization, no copy.
    /// Falls back to the copying path when the datagram must fragment;
    /// recycles the buffer to the simulator pool on every failure return,
    /// so the caller never owns it afterwards. Failure conditions match
    /// send().
    bool send_with_headroom(std::uint8_t protocol, util::Ipv4Address dst,
                            util::ByteBuffer&& wire, const SendOptions& options = {});

    /// Advisory GSO viability probe (DESIGN.md §12): true when a unicast
    /// train of `wire_segment_bytes`-sized datagrams to `dst` would take
    /// send_with_headroom's non-fragmenting fast path right now. Entirely
    /// read-only — no counters move, no cache line refills — so a transport
    /// may probe before building a mega-segment and fall back to the
    /// per-segment loop with exact counter parity when the answer is no.
    bool gso_viable(util::Ipv4Address dst, std::size_t wire_segment_bytes);

    /// Sends one mega-segment descriptor as `d.seg_count` wire datagrams
    /// (the egress link performs the late split). The caller filled the
    /// transport half of d.proto; this writes the IPv4 half (first
    /// segment's identification; the split advances it per segment),
    /// reserves seg_count consecutive IP ids, and accounts exactly what
    /// seg_count send_with_headroom fast-path calls would have: IpTx per
    /// segment, one counted route probe plus seg_count-1 cache hits, one Tx
    /// trace/record note per segment. Returns false — having counted
    /// nothing — when the fast path is not viable; the caller falls back.
    bool send_gso(std::uint8_t protocol, util::Ipv4Address dst,
                  link::GsoDescriptor& d, const SendOptions& options = {});

    /// Sends a payload as a link-local broadcast (dst 255.255.255.255)
    /// directly out one interface. Broadcasts are delivered to every node
    /// on that network and never forwarded — the routing protocols use
    /// this to reach their neighbors.
    bool send_broadcast(std::uint8_t protocol, std::size_t ifindex,
                        std::span<const std::uint8_t> payload, const SendOptions& options = {});

    /// Sends an ICMP echo request; replies surface via the error handler
    /// or a protocol handler registered for ICMP. `ttl` below the path
    /// length provokes Time Exceeded from the expiring gateway — the
    /// mechanism traceroute is built on.
    bool ping(util::Ipv4Address dst, std::uint16_t id, std::uint16_t seq,
              util::ByteBuffer data = {}, std::uint8_t ttl = 64);

    RoutingTable& routing_table() noexcept { return routes_; }
    const RoutingTable& routing_table() const noexcept { return routes_; }

    /// Legacy statistics view, synthesized from the telemetry counter
    /// block — the counters are the single storage, so the hot path pays
    /// one increment per event, not two parallel ones.
    IpStats stats() const noexcept {
        using telemetry::Counter;
        IpStats s;
        s.datagrams_sent = counters_.get(Counter::IpTx);
        s.datagrams_received = counters_.get(Counter::IpRx);
        s.delivered_locally = counters_.get(Counter::IpDeliver);
        s.forwarded = counters_.get(Counter::IpFwd);
        s.dropped_bad_checksum = counters_.get(Counter::IpDropChecksum);
        s.dropped_malformed = counters_.get(Counter::IpDropMalformed);
        s.dropped_no_route = counters_.get(Counter::IpDropNoRoute);
        s.dropped_ttl_expired = counters_.get(Counter::IpDropTtlExpired);
        s.dropped_iface_down = counters_.get(Counter::IpDropIfaceDown);
        s.dropped_not_for_us = counters_.get(Counter::IpDropNotForUs);
        s.fragments_created = counters_.get(Counter::IpFragsCreated);
        s.icmp_errors_sent = counters_.get(Counter::IpIcmpErrorsSent);
        s.source_quenches_sent = counters_.get(Counter::IpSourceQuenchSent);
        return s;
    }
    const ReassemblyStats& reassembly_stats() const noexcept { return reassembler_.stats(); }
    const std::string& name() const noexcept { return name_; }
    sim::Simulator& simulator() noexcept { return sim_; }

    /// True if `addr` is bound to any of this stack's interfaces.
    bool is_local_address(util::Ipv4Address addr) const;

    /// Observation hook on the forwarding path (gateway accounting, E7).
    /// Receives the already-decoded header and the datagram's wire size.
    using ForwardTap = std::function<void(const Ipv4Header&, std::size_t wire_bytes)>;
    void set_forward_tap(ForwardTap tap) { forward_tap_ = std::move(tap); }

    /// Full-stack event trace (tcpdump-style; see ip/trace.h). Fires on
    /// tx / rx / deliver / fwd / drop with the decoded header.
    using TraceHook = std::function<void(const char* event, const Ipv4Header&,
                                         std::size_t wire_bytes)>;
    void set_trace(TraceHook trace) { trace_ = std::move(trace); }

    /// Attaches a flight-recorder lane: every event the text tracer would
    /// report is also appended as a 32-byte binary record (see
    /// telemetry/record.h). Unlike set_trace, recording costs no
    /// formatting — decode happens after the run. nullptr detaches.
    void set_recorder(telemetry::RecorderLane* lane) noexcept { recorder_ = lane; }

    /// This node's internet-layer counters (single writer: the shard
    /// thread that runs this stack). The sole storage for internet-layer
    /// accounting; stats() is a view over these slots.
    const telemetry::CounterBlock& counters() const noexcept { return counters_; }

private:
    struct Interface {
        link::NetIf* netif;
        util::Ipv4Address address;
        util::Ipv4Prefix subnet;
        // Cached at attach time: an interface's MTU is fixed by its link
        // parameters for life, and the forwarding fast path reads it per
        // datagram — no reason to pay a virtual call for a constant.
        std::size_t mtu;
    };

    // One line of the destination→route cache: pure soft state in the
    // paper's sense. A line is live only while its generation matches the
    // routing table's; any install/remove/flush bumps the table generation
    // and thereby invalidates every line at once, so a stale route can
    // never be served and wiping the cache is always behavior-free.
    struct RouteCacheEntry {
        util::Ipv4Address dst;
        const Route* route = nullptr;
        std::uint64_t generation = 0;  ///< table generations start at 1
    };
    static constexpr std::size_t kRouteCacheSlots = 64;  // direct-mapped

    /// Last route served to the burst pipeline: a one-line memo in front
    /// of the direct-mapped cache, checked against the table generation at
    /// every use. A memo hit is exactly the cache hit the per-packet path
    /// would have counted (same destination + same generation implies the
    /// direct-mapped line still holds it), so hit/miss counters stay
    /// identical.
    struct RouteMemo {
        util::Ipv4Address dst;
        const Route* route = nullptr;
        std::uint64_t generation = 0;
        bool valid = false;
    };

    /// Hot-path counters a burst accumulates in registers and flushes once
    /// per burst (or at a bail) — the flush lands before any other event
    /// runs, so every observer sees per-packet-exact values.
    struct ForwardLocals {
        std::uint64_t rx = 0;
        std::uint64_t fwd = 0;
        std::uint64_t cache_hits = 0;
        std::uint64_t cache_misses = 0;
    };

    void receive(std::size_t ifindex, link::Packet packet);

    /// The burst receive path (DESIGN.md §"burst forwarding"): pass 1
    /// decodes every header into a stack-resident descriptor array with
    /// prefetch; pass 2 commits packets one by one, advancing the clock to
    /// each arrival and bailing the moment another event would interleave.
    /// Returns how many items were consumed (>= 1).
    std::size_t receive_burst(std::size_t ifindex, link::PacketBurst& burst);

    /// Everything receive() does after a successful decode: trace/record
    /// Rx, deliver locally or forward. Shared verbatim by the per-packet
    /// and burst paths so they cannot drift.
    void process_datagram(const DecodedDatagram& d, link::Packet& packet,
                          std::size_t ifindex, RouteMemo* memo, ForwardLocals* locals);
    void deliver_local(const Ipv4Header& header, std::span<const std::uint8_t> payload,
                       std::size_t ifindex);
    /// Forwarding takes the owned packet: the non-fragmenting fast path
    /// rewrites TTL/checksum in place and moves the buffer straight to the
    /// egress interface. On every other path the packet is left with the
    /// caller, which recycles it. `memo`/`locals` are non-null only on the
    /// burst path.
    void forward(const DecodedDatagram& d, link::Packet& packet, std::size_t in_ifindex,
                 RouteMemo* memo = nullptr, ForwardLocals* locals = nullptr);
    bool transmit(const Ipv4Header& header, std::span<const std::uint8_t> payload,
                  const Route& route);
    void handle_icmp(const Ipv4Header& header, std::span<const std::uint8_t> payload);
    void send_icmp_error(IcmpType type, std::uint8_t code,
                         std::span<const std::uint8_t> offending_wire);

    /// Cached longest-prefix match (nullptr = no route). Serves the
    /// per-packet lookups in send() and forward().
    const Route* lookup_route(util::Ipv4Address dst);

    /// Uncounted route peek for viability probes: reads the cache line but
    /// never refills it and scores no hit/miss — the eventual counted
    /// lookup_route reproduces exactly the probe sequence the per-segment
    /// path would have made.
    const Route* peek_route(util::Ipv4Address dst);

    /// The cache probe itself, with the hit/miss outcome reported to the
    /// caller instead of counted — the burst path batches the counts.
    const Route* probe_route_cache(util::Ipv4Address dst, bool& hit);

    /// One observation point feeding both the text tracer and the flight
    /// recorder, so they can never disagree about which events happened.
    /// The counters are wired separately (they fire on a few paths the
    /// tracer stays silent on).
    void note(telemetry::PacketEvent event, const Ipv4Header& h, std::size_t wire_bytes,
              telemetry::DropReason reason = telemetry::DropReason::None) {
        if (trace_) trace_(telemetry::to_cstr(event), h, wire_bytes);
#ifndef CATENET_NO_TELEMETRY
        if (recorder_ != nullptr) {
            telemetry::PacketRecord r;
            r.t_ns = sim_.now().nanos();
            r.src = h.src.value();
            r.dst = h.dst.value();
            r.wire_bytes = static_cast<std::uint32_t>(wire_bytes);
            r.frag_off = h.fragment_offset;
            r.event = static_cast<std::uint8_t>(event);
            r.protocol = h.protocol;
            r.ttl = h.ttl;
            r.tos = h.tos;
            r.more_fragments = h.more_fragments ? 1 : 0;
            r.reason = static_cast<std::uint8_t>(reason);
            recorder_->append(r);
        }
#else
        (void)reason;
#endif
    }
    /// Returns a retired packet's buffer capacity to the simulation pool;
    /// no-op if the buffer was already moved onward.
    void recycle_wire(link::Packet& packet) {
        sim_.buffer_pool().recycle(std::move(packet.bytes));
    }

    sim::Simulator& sim_;
    std::string name_;
    std::vector<Interface> interfaces_;
    RoutingTable routes_;
    std::array<RouteCacheEntry, kRouteCacheSlots> route_cache_{};
    Reassembler reassembler_;
    std::unordered_map<std::uint8_t, ProtocolHandler> protocols_;
    TransportRunHandler* run_handler_ = nullptr;  ///< GRO hook (one per stack)
    std::uint8_t run_protocol_ = 0;
    bool rx_csum_ok_ = false;  ///< ambient flag: current inbound datagram is vouched
    std::vector<IcmpErrorHandler> icmp_error_handlers_;
    ForwardTap forward_tap_;
    TraceHook trace_;
    telemetry::CounterBlock counters_;
    telemetry::RecorderLane* recorder_ = nullptr;
    bool source_quench_ = false;
    sim::Time quench_min_interval_;
    sim::Time last_quench_;
    std::uint16_t next_identification_ = 1;
    bool forwarding_ = false;
    bool down_ = false;
};

}  // namespace catenet::ip
