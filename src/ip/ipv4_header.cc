#include "ip/ipv4_header.h"

#include "util/checksum.h"

namespace catenet::ip {

util::ByteBuffer encode_datagram(const Ipv4Header& header,
                                 std::span<const std::uint8_t> payload) {
    const auto total = kIpv4HeaderSize + payload.size();
    if (total > 0xffff) {
        throw std::length_error("IPv4 datagram exceeds 65535 bytes");
    }
    util::BufferWriter w(total);
    w.put_u8(0x45);  // version 4, IHL 5 words
    w.put_u8(header.tos);
    w.put_u16(static_cast<std::uint16_t>(total));
    w.put_u16(header.identification);
    std::uint16_t frag = header.fragment_offset & 0x1fff;
    if (header.dont_fragment) frag |= 0x4000;
    if (header.more_fragments) frag |= 0x2000;
    w.put_u16(frag);
    w.put_u8(header.ttl);
    w.put_u8(header.protocol);
    w.put_u16(0);  // checksum placeholder
    w.put_u32(header.src.value());
    w.put_u32(header.dst.value());
    const auto checksum = util::internet_checksum(
        std::span<const std::uint8_t>(w.data().data(), kIpv4HeaderSize));
    w.patch_u16(10, checksum);
    w.put_bytes(payload);
    return w.take();
}

bool decode_datagram(std::span<const std::uint8_t> wire, DecodedDatagram& out) {
    util::BufferReader r(wire);
    const std::uint8_t version_ihl = r.get_u8();
    if ((version_ihl >> 4) != 4) {
        throw util::DecodeError("not an IPv4 datagram");
    }
    const auto header_len = static_cast<std::size_t>(version_ihl & 0x0f) * 4;
    if (header_len < kIpv4HeaderSize || header_len > wire.size()) {
        throw util::DecodeError("bad IHL");
    }
    Ipv4Header& h = out.header;
    h.tos = r.get_u8();
    h.total_length = r.get_u16();
    if (h.total_length < header_len || h.total_length > wire.size()) {
        throw util::DecodeError("bad total length");
    }
    h.identification = r.get_u16();
    const std::uint16_t frag = r.get_u16();
    h.dont_fragment = (frag & 0x4000) != 0;
    h.more_fragments = (frag & 0x2000) != 0;
    h.fragment_offset = frag & 0x1fff;
    h.ttl = r.get_u8();
    h.protocol = r.get_u8();
    r.get_u16();  // checksum (validated over the whole header below)
    h.src = util::Ipv4Address(r.get_u32());
    h.dst = util::Ipv4Address(r.get_u32());

    out.header_length = header_len;
    out.payload_offset = header_len;
    out.payload_length = h.total_length - header_len;

    return util::checksum_valid(wire.subspan(0, header_len));
}

}  // namespace catenet::ip
