#include "ip/ipv4_header.h"

#include <cstring>
#include <stdexcept>

#include "util/checksum.h"

namespace catenet::ip {

namespace {

inline std::uint16_t load_u16(const std::uint8_t* p) noexcept {
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

inline void store_u16(std::uint8_t* p, std::uint16_t v) noexcept {
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v & 0xff);
}

inline void store_u32(std::uint8_t* p, std::uint32_t v) noexcept {
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v & 0xff);
}

// Writes the full wire image into `out` (resized to fit). Shared by the
// fresh-allocation and pool-recycling entry points; every byte of `out` is
// stored, so a recycled buffer's previous contents can never leak through.
void write_datagram(util::ByteBuffer& out, const Ipv4Header& header,
                    std::span<const std::uint8_t> payload) {
    const auto total = kIpv4HeaderSize + payload.size();
    out.resize(total);
    write_ipv4_header(out, header, total);
    if (!payload.empty()) {
        std::memcpy(out.data() + kIpv4HeaderSize, payload.data(), payload.size());
    }
}

}  // namespace

void write_ipv4_header(std::span<std::uint8_t> out, const Ipv4Header& header,
                       std::size_t total_length) {
    if (total_length > 0xffff) {
        throw std::length_error("IPv4 datagram exceeds 65535 bytes");
    }
    std::uint8_t* p = out.data();
    p[0] = 0x45;  // version 4, IHL 5 words
    p[1] = header.tos;
    store_u16(p + 2, static_cast<std::uint16_t>(total_length));
    store_u16(p + 4, header.identification);
    std::uint16_t frag = header.fragment_offset & 0x1fff;
    if (header.dont_fragment) frag |= 0x4000;
    if (header.more_fragments) frag |= 0x2000;
    store_u16(p + 6, frag);
    p[8] = header.ttl;
    p[9] = header.protocol;
    store_u16(p + 10, 0);  // checksum placeholder
    store_u32(p + 12, header.src.value());
    store_u32(p + 16, header.dst.value());
    store_u16(p + 10, util::internet_checksum({p, kIpv4HeaderSize}));
}

util::ByteBuffer encode_datagram(const Ipv4Header& header,
                                 std::span<const std::uint8_t> payload) {
    util::ByteBuffer out;
    out.reserve(kIpv4HeaderSize + payload.size());
    write_datagram(out, header, payload);
    return out;
}

util::ByteBuffer encode_datagram(const Ipv4Header& header,
                                 std::span<const std::uint8_t> payload,
                                 util::BufferPool& pool) {
    util::ByteBuffer out = pool.acquire(kIpv4HeaderSize + payload.size());
    write_datagram(out, header, payload);
    return out;
}

bool decode_datagram(std::span<const std::uint8_t> wire, DecodedDatagram& out) {
    return decode_datagram(wire, out, true);
}

bool decode_datagram(std::span<const std::uint8_t> wire, DecodedDatagram& out,
                     bool verify_checksum) {
    // Hot path of every gateway hop: the fixed header is read with direct
    // loads (all offsets proven in range by the IHL check) instead of a
    // bounds-checked cursor. Validation order and outcomes match the
    // original cursor-based decoder exactly.
    if (wire.empty()) {
        throw util::DecodeError("truncated datagram");
    }
    const std::uint8_t* p = wire.data();
    const std::uint8_t version_ihl = p[0];
    if ((version_ihl >> 4) != 4) {
        throw util::DecodeError("not an IPv4 datagram");
    }
    const auto header_len = static_cast<std::size_t>(version_ihl & 0x0f) * 4;
    if (header_len < kIpv4HeaderSize || header_len > wire.size()) {
        throw util::DecodeError("bad IHL");
    }
    Ipv4Header& h = out.header;
    h.tos = p[1];
    h.total_length = load_u16(p + 2);
    if (h.total_length < header_len || h.total_length > wire.size()) {
        throw util::DecodeError("bad total length");
    }
    h.identification = load_u16(p + 4);
    const std::uint16_t frag = load_u16(p + 6);
    h.dont_fragment = (frag & 0x4000) != 0;
    h.more_fragments = (frag & 0x2000) != 0;
    h.fragment_offset = frag & 0x1fff;
    h.ttl = p[8];
    h.protocol = p[9];
    h.src = util::Ipv4Address(
        (std::uint32_t{p[12]} << 24) | (std::uint32_t{p[13]} << 16) |
        (std::uint32_t{p[14]} << 8) | std::uint32_t{p[15]});
    h.dst = util::Ipv4Address(
        (std::uint32_t{p[16]} << 24) | (std::uint32_t{p[17]} << 16) |
        (std::uint32_t{p[18]} << 8) | std::uint32_t{p[19]});

    out.header_length = header_len;
    out.payload_offset = header_len;
    out.payload_length = h.total_length - header_len;

    return !verify_checksum || util::checksum_valid(wire.subspan(0, header_len));
}

void decrement_ttl(std::span<std::uint8_t> wire) {
    std::uint8_t* p = wire.data();
    // TTL shares a 16-bit checksum word with the protocol field; ttl-1 in
    // the high byte is a -0x0100 word delta the checksum absorbs without
    // re-reading the other nine words.
    const std::uint16_t old_word = load_u16(p + 8);
    p[8] = static_cast<std::uint8_t>(p[8] - 1);
    const std::uint16_t new_word = load_u16(p + 8);
    store_u16(p + 10, util::checksum_update_u16(load_u16(p + 10), old_word, new_word));
}

}  // namespace catenet::ip
