#include "ip/reassembly.h"

#include <algorithm>

namespace catenet::ip {

Reassembler::Reassembler(sim::Simulator& sim, sim::Time timeout)
    : sim_(sim), timeout_(timeout) {}

std::optional<util::ByteBuffer> Reassembler::add_fragment(
    const Ipv4Header& header, std::span<const std::uint8_t> payload) {
    expire(sim_.now());
    ++stats_.fragments_received;

    const Key key{header.src.value(), header.dst.value(), header.protocol,
                  header.identification};
    Buffer& buf = buffers_[key];
    if (buf.received.empty()) {
        buf.deadline = sim_.now() + timeout_;
    }

    const std::size_t offset = header.payload_offset_bytes();
    insert_range(buf, offset, payload);
    if (!header.more_fragments) {
        buf.total_length = offset + payload.size();
    }

    if (!complete(buf)) return std::nullopt;

    util::ByteBuffer out = std::move(buf.data);
    out.resize(*buf.total_length);
    buffers_.erase(key);
    ++stats_.datagrams_completed;
    return out;
}

void Reassembler::insert_range(Buffer& buf, std::size_t offset,
                               std::span<const std::uint8_t> bytes) {
    if (bytes.empty()) return;
    const std::size_t end = offset + bytes.size();
    if (buf.data.size() < end) buf.data.resize(end);
    std::copy(bytes.begin(), bytes.end(), buf.data.begin() + static_cast<std::ptrdiff_t>(offset));

    // Merge [offset, end) into the coalesced range list.
    buf.received.push_back({offset, end});
    std::sort(buf.received.begin(), buf.received.end(),
              [](const Buffer::Span& a, const Buffer::Span& b) { return a.first < b.first; });
    std::vector<Buffer::Span> merged;
    for (const auto& span : buf.received) {
        if (!merged.empty() && span.first <= merged.back().last) {
            merged.back().last = std::max(merged.back().last, span.last);
        } else {
            merged.push_back(span);
        }
    }
    buf.received = std::move(merged);
}

bool Reassembler::complete(const Buffer& buf) const {
    return buf.total_length && buf.received.size() == 1 && buf.received.front().first == 0 &&
           buf.received.front().last >= *buf.total_length;
}

void Reassembler::expire(sim::Time now) {
    for (auto it = buffers_.begin(); it != buffers_.end();) {
        if (it->second.deadline <= now) {
            it = buffers_.erase(it);
            ++stats_.timeouts;
            if (counters_ != nullptr)
                counters_->inc(telemetry::Counter::IpDropReassemblyTimeout);
        } else {
            ++it;
        }
    }
}

}  // namespace catenet::ip
