// Datagram reassembly (RFC 791 §3.2). Fragments are keyed by
// (src, dst, protocol, identification); partial datagrams are discarded
// after a timeout — classic soft state: losing a reassembly buffer costs
// one datagram, never a connection.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "ip/ipv4_header.h"
#include "sim/simulator.h"
#include "telemetry/counters.h"
#include "util/byte_buffer.h"

namespace catenet::ip {

struct ReassemblyStats {
    std::uint64_t fragments_received = 0;
    std::uint64_t datagrams_completed = 0;
    std::uint64_t timeouts = 0;
};

class Reassembler {
public:
    Reassembler(sim::Simulator& sim, sim::Time timeout = sim::seconds(15));

    /// Adds a fragment. Returns the reassembled payload when this fragment
    /// completed the datagram, nullopt otherwise. `header` must describe a
    /// fragment (callers pass unfragmented datagrams straight through).
    std::optional<util::ByteBuffer> add_fragment(const Ipv4Header& header,
                                                 std::span<const std::uint8_t> payload);

    std::size_t pending() const noexcept { return buffers_.size(); }
    const ReassemblyStats& stats() const noexcept { return stats_; }

    /// Mirrors each reassembly timeout into the owning stack's
    /// IpDropReassemblyTimeout counter slot (nullptr = no mirroring).
    void set_counters(telemetry::CounterBlock* counters) noexcept {
        counters_ = counters;
    }

    /// Drops all partial datagrams (node restart).
    void clear() { buffers_.clear(); }

private:
    struct Key {
        std::uint32_t src;
        std::uint32_t dst;
        std::uint8_t protocol;
        std::uint16_t identification;
        auto operator<=>(const Key&) const = default;
    };

    struct Buffer {
        // Received byte ranges [first, last) with their data.
        struct Span {
            std::size_t first;
            std::size_t last;
        };
        util::ByteBuffer data;          // grows as fragments land
        std::vector<Span> received;     // coalesced ranges
        std::optional<std::size_t> total_length;  // known once MF=0 arrives
        sim::Time deadline;
    };

    void insert_range(Buffer& buf, std::size_t offset, std::span<const std::uint8_t> bytes);
    bool complete(const Buffer& buf) const;
    void expire(sim::Time now);

    sim::Simulator& sim_;
    sim::Time timeout_;
    std::map<Key, Buffer> buffers_;
    ReassemblyStats stats_;
    telemetry::CounterBlock* counters_ = nullptr;
};

}  // namespace catenet::ip
