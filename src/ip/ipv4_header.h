// RFC 791 IPv4 header, encoded to and decoded from real wire format with a
// real header checksum. Options are not generated; received options are
// skipped per the IHL field.
#pragma once

#include <cstdint>
#include <span>

#include "util/buffer_pool.h"
#include "util/byte_buffer.h"
#include "util/ip_address.h"

namespace catenet::ip {

/// Fixed header size without options.
inline constexpr std::size_t kIpv4HeaderSize = 20;

/// Maximum datagram the architecture promises to carry end to end without
/// fragmentation (RFC 791's 576-octet guarantee).
inline constexpr std::size_t kMinReassemblyBuffer = 576;

struct Ipv4Header {
    // version is implicitly 4; ihl is derived from options (none here).
    std::uint8_t tos = 0;
    std::uint16_t total_length = 0;  ///< header + payload, filled by encode
    std::uint16_t identification = 0;
    bool dont_fragment = false;
    bool more_fragments = false;
    std::uint16_t fragment_offset = 0;  ///< in 8-octet units
    std::uint8_t ttl = 64;
    std::uint8_t protocol = 0;
    util::Ipv4Address src;
    util::Ipv4Address dst;

    bool is_fragment() const noexcept { return more_fragments || fragment_offset != 0; }

    /// Byte offset of this fragment's payload within the original datagram.
    std::size_t payload_offset_bytes() const noexcept {
        return std::size_t{fragment_offset} * 8;
    }
};

/// Serializes header + payload into a wire-format datagram. Computes
/// total_length and the header checksum.
util::ByteBuffer encode_datagram(const Ipv4Header& header,
                                 std::span<const std::uint8_t> payload);

/// Pool-recycling variant: identical output bytes, but the wire buffer's
/// capacity comes from (and should eventually return to) `pool`. The hot
/// host-side send path — forwarding never encodes at all.
util::ByteBuffer encode_datagram(const Ipv4Header& header,
                                 std::span<const std::uint8_t> payload,
                                 util::BufferPool& pool);

/// Writes the 20-byte fixed header (version/IHL, lengths, checksum) for a
/// datagram of `total_length` bytes into the first kIpv4HeaderSize bytes of
/// `out`. This is the in-place half of the headroom send path: a transport
/// that laid out [headroom][segment] gets its IP header stored directly
/// over the headroom, byte-identical to encode_datagram's output.
/// Precondition: out.size() >= kIpv4HeaderSize, total_length <= 65535.
void write_ipv4_header(std::span<std::uint8_t> out, const Ipv4Header& header,
                       std::size_t total_length);

/// The gateway's entire per-hop datagram rewrite, applied in place to a
/// validated wire buffer: decrements TTL and patches the header checksum
/// incrementally (RFC 1624). Produces bytes identical to re-serializing
/// the decoded header with ttl-1 — see the fast-path property tests.
/// Precondition: `wire` holds at least a full header and ttl >= 1.
void decrement_ttl(std::span<std::uint8_t> wire);

struct DecodedDatagram {
    Ipv4Header header;
    std::size_t header_length = 0;  ///< bytes, including options
    std::size_t payload_offset = 0;
    std::size_t payload_length = 0;
};

/// Parses and validates a wire-format datagram. Throws util::DecodeError
/// on malformed input; returns false (no throw) when only the header
/// checksum fails — the usual "corrupted in flight" case callers count.
bool decode_datagram(std::span<const std::uint8_t> wire, DecodedDatagram& out);

/// Checksum-offload variant: `verify_checksum = false` skips the header
/// checksum fold, for packets whose link::Packet::csum_ok flag vouches
/// that the encoder-computed checksum is untouched (behaviourally
/// identical — the flag implies the fold would pass). Structural
/// validation is unchanged.
bool decode_datagram(std::span<const std::uint8_t> wire, DecodedDatagram& out,
                     bool verify_checksum);

/// Payload view into a wire buffer previously decoded.
inline std::span<const std::uint8_t> payload_of(std::span<const std::uint8_t> wire,
                                                const DecodedDatagram& d) {
    return wire.subspan(d.payload_offset, d.payload_length);
}

/// Outcome of one slot in a batch decode, mirroring decode_datagram()'s
/// three-way result as a value so the burst pipeline's decode pass is a
/// branch-light tight loop (the throw is absorbed here, once per mangled
/// datagram rather than per call site).
enum class DecodeStatus : std::uint8_t { Ok, BadChecksum, Malformed };

/// Batch-decode entry point for the burst pipeline: decode_datagram() with
/// the exception folded into the status. On Malformed, `out.header` holds
/// whatever fields decoded before the failure (best effort, same as the
/// per-packet path reports).
inline DecodeStatus decode_datagram_status(std::span<const std::uint8_t> wire,
                                           DecodedDatagram& out) {
    try {
        return decode_datagram(wire, out) ? DecodeStatus::Ok : DecodeStatus::BadChecksum;
    } catch (const util::DecodeError&) {
        return DecodeStatus::Malformed;
    }
}

/// Batch decode honouring checksum offload (see the three-argument
/// decode_datagram): pass `verify_checksum = false` for csum_ok packets.
inline DecodeStatus decode_datagram_status(std::span<const std::uint8_t> wire,
                                           DecodedDatagram& out,
                                           bool verify_checksum) {
    try {
        return decode_datagram(wire, out, verify_checksum) ? DecodeStatus::Ok
                                                           : DecodeStatus::BadChecksum;
    } catch (const util::DecodeError&) {
        return DecodeStatus::Malformed;
    }
}

}  // namespace catenet::ip
