#include "ip/icmp.h"

#include <algorithm>

#include "util/checksum.h"

namespace catenet::ip {

IcmpMessage IcmpMessage::echo_request(std::uint16_t id, std::uint16_t seq,
                                      util::ByteBuffer data) {
    IcmpMessage m;
    m.type = IcmpType::EchoRequest;
    m.rest = (std::uint32_t{id} << 16) | seq;
    m.body = std::move(data);
    return m;
}

IcmpMessage IcmpMessage::echo_reply(const IcmpMessage& request) {
    IcmpMessage m = request;
    m.type = IcmpType::EchoReply;
    return m;
}

IcmpMessage IcmpMessage::error(IcmpType type, std::uint8_t code,
                               std::span<const std::uint8_t> offending_datagram) {
    IcmpMessage m;
    m.type = type;
    m.code = code;
    // Quote the IP header (assume 20 bytes if shorter data) plus 8 bytes.
    const std::size_t quote = std::min<std::size_t>(offending_datagram.size(), 28);
    m.body = util::to_buffer(offending_datagram.subspan(0, quote));
    return m;
}

util::ByteBuffer encode_icmp(const IcmpMessage& msg) {
    util::BufferWriter w(8 + msg.body.size());
    w.put_u8(static_cast<std::uint8_t>(msg.type));
    w.put_u8(msg.code);
    w.put_u16(0);  // checksum placeholder
    w.put_u32(msg.rest);
    w.put_bytes(msg.body);
    w.patch_u16(2, util::internet_checksum(w.data()));
    return w.take();
}

std::optional<IcmpMessage> decode_icmp(std::span<const std::uint8_t> wire) {
    if (!util::checksum_valid(wire)) return std::nullopt;
    util::BufferReader r(wire);
    IcmpMessage m;
    m.type = static_cast<IcmpType>(r.get_u8());
    m.code = r.get_u8();
    r.get_u16();  // checksum already validated
    m.rest = r.get_u32();
    m.body = util::to_buffer(r.remaining());
    return m;
}

}  // namespace catenet::ip
