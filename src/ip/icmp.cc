#include "ip/icmp.h"

#include <algorithm>
#include <cstring>

#include "util/checksum.h"

namespace catenet::ip {

IcmpMessage IcmpMessage::echo_request(std::uint16_t id, std::uint16_t seq,
                                      util::ByteBuffer data) {
    IcmpMessage m;
    m.type = IcmpType::EchoRequest;
    m.rest = (std::uint32_t{id} << 16) | seq;
    m.body = std::move(data);
    return m;
}

IcmpMessage IcmpMessage::echo_reply(const IcmpMessage& request) {
    IcmpMessage m = request;
    m.type = IcmpType::EchoReply;
    return m;
}

IcmpMessage IcmpMessage::error(IcmpType type, std::uint8_t code,
                               std::span<const std::uint8_t> offending_datagram) {
    IcmpMessage m;
    m.type = type;
    m.code = code;
    // Quote the IP header (assume 20 bytes if shorter data) plus 8 bytes.
    const std::size_t quote = std::min<std::size_t>(offending_datagram.size(), 28);
    m.body = util::to_buffer(offending_datagram.subspan(0, quote));
    return m;
}

namespace {

// Writes the full message into `out` (resized to fit); every byte stored,
// so recycled capacity never leaks stale contents.
void write_icmp(util::ByteBuffer& out, const IcmpMessage& msg) {
    out.resize(8 + msg.body.size());
    std::uint8_t* p = out.data();
    p[0] = static_cast<std::uint8_t>(msg.type);
    p[1] = msg.code;
    p[2] = 0;  // checksum placeholder
    p[3] = 0;
    p[4] = static_cast<std::uint8_t>(msg.rest >> 24);
    p[5] = static_cast<std::uint8_t>(msg.rest >> 16);
    p[6] = static_cast<std::uint8_t>(msg.rest >> 8);
    p[7] = static_cast<std::uint8_t>(msg.rest & 0xff);
    if (!msg.body.empty()) {
        std::memcpy(p + 8, msg.body.data(), msg.body.size());
    }
    const std::uint16_t checksum = util::internet_checksum(out);
    p[2] = static_cast<std::uint8_t>(checksum >> 8);
    p[3] = static_cast<std::uint8_t>(checksum & 0xff);
}

}  // namespace

util::ByteBuffer encode_icmp(const IcmpMessage& msg) {
    util::ByteBuffer out;
    write_icmp(out, msg);
    return out;
}

util::ByteBuffer encode_icmp(const IcmpMessage& msg, util::BufferPool& pool) {
    util::ByteBuffer out = pool.acquire(8 + msg.body.size());
    write_icmp(out, msg);
    return out;
}

std::optional<IcmpMessage> decode_icmp(std::span<const std::uint8_t> wire) {
    if (!util::checksum_valid(wire)) return std::nullopt;
    util::BufferReader r(wire);
    IcmpMessage m;
    m.type = static_cast<IcmpType>(r.get_u8());
    m.code = r.get_u8();
    r.get_u16();  // checksum already validated
    m.rest = r.get_u32();
    m.body = util::to_buffer(r.remaining());
    return m;
}

}  // namespace catenet::ip
