// Packet tracing: a tcpdump-style, human-readable line per datagram event
// at a node's IP layer. Attach with IpStack::set_trace(make_text_tracer(...))
// to watch a node's traffic; tests attach lambdas to assert on events.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "ip/ipv4_header.h"
#include "sim/simulator.h"

namespace catenet::ip {

/// Event kinds reported by the stack. "tx" = first transmission of a
/// locally originated datagram, "rx" = arrived from a network, "deliver"
/// = handed to a local protocol, "fwd" = forwarded toward the next hop,
/// "drop" = discarded (bad checksum, no route, TTL, down).
using TraceFn = std::function<void(const char* event, const Ipv4Header& header,
                                   std::size_t wire_bytes)>;

/// Formats one line per event to `os`:
///   [  1.234567] name fwd  10.0.1.1 > 10.0.3.2 TCP 1460B ttl=63 tos=0x00
/// Ports are not parsed here (the stack traces at the IP layer); transport
/// detail belongs to the transport's own tracing.
TraceFn make_text_tracer(std::ostream& os, std::string name,
                         const sim::Simulator& sim);

/// Protocol number -> short name ("TCP", "UDP", "ICMP", "EGP", or the
/// number in decimal).
std::string protocol_name(std::uint8_t protocol);

}  // namespace catenet::ip
