// Packet tracing: a tcpdump-style, human-readable line per datagram event
// at a node's IP layer. Attach with IpStack::set_trace(make_text_tracer(...))
// to watch a node's traffic; tests attach lambdas to assert on events.
//
// For sharded runs (sim::ParallelSimulator) use TraceCollector: one lane
// per node, each appended to only by the shard thread that owns the node,
// so tracing costs no locks on the hot path and lines never interleave.
// After the run the lanes merge into one deterministic transcript.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ip/ipv4_header.h"
#include "sim/simulator.h"

namespace catenet::ip {

/// Event kinds reported by the stack. "tx" = first transmission of a
/// locally originated datagram, "rx" = arrived from a network, "deliver"
/// = handed to a local protocol, "fwd" = forwarded toward the next hop,
/// "drop" = discarded (bad checksum, no route, TTL, down).
using TraceFn = std::function<void(const char* event, const Ipv4Header& header,
                                   std::size_t wire_bytes)>;

/// Formats one complete trace line (including the trailing newline):
///   [  1.234567] name fwd  10.0.1.1 > 10.0.3.2 TCP 1460B ttl=63 tos=0x00
/// The single formatter shared by the stream tracer and TraceCollector, so
/// a parallel run's merged transcript is byte-comparable to a sequential
/// stream trace of the same nodes.
std::string format_trace_line(double now_seconds, const std::string& name,
                              const char* event, const Ipv4Header& header,
                              std::size_t wire_bytes);

/// Formats one line per event to `os`. Ports are not parsed here (the
/// stack traces at the IP layer); transport detail belongs to the
/// transport's own tracing.
TraceFn make_text_tracer(std::ostream& os, std::string name,
                         const sim::Simulator& sim);

/// Protocol number -> short name ("TCP", "UDP", "ICMP", "EGP", or the
/// number in decimal).
std::string protocol_name(std::uint8_t protocol);

/// Lock-free multi-lane trace sink. Each lane is owned by exactly one
/// node (and therefore one shard thread): appends are plain vector
/// push_backs. Reading — lane_text() / merged() — is only defined while
/// the simulation is quiescent (between ParallelSimulator::run_until
/// calls), which is when tests and reports want it anyway.
class TraceCollector {
public:
    /// Creates a lane; returns its id. Lane ids are the tie-break rank in
    /// merged(), so create lanes in deterministic order.
    std::size_t add_lane(std::string name);

    /// A TraceFn that appends to `lane`, timestamped from `sim`'s clock.
    /// The returned callable holds stable pointers — the collector must
    /// outlive every stack it is attached to.
    TraceFn make_tracer(std::size_t lane, std::string node_name,
                        const sim::Simulator& sim);

    std::size_t lane_count() const noexcept { return lanes_.size(); }
    const std::string& lane_name(std::size_t lane) const;

    /// One lane's lines, concatenated in emission (= time) order.
    std::string lane_text(std::size_t lane) const;

    /// All lanes merged into one transcript, ordered by (timestamp, lane
    /// id, per-lane sequence) — deterministic regardless of thread count.
    std::string merged() const;

    std::size_t total_entries() const noexcept;

private:
    struct Entry {
        std::int64_t t_ns;
        std::string text;
    };
    struct Lane {
        std::string name;
        std::vector<Entry> entries;
    };

    std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace catenet::ip
