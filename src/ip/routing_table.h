// Longest-prefix-match forwarding table. Shared by hosts (usually one
// connected route plus a default) and gateways (populated statically or by
// the routing protocols in src/routing/).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/ip_address.h"

namespace catenet::ip {

struct Route {
    util::Ipv4Prefix prefix;
    /// Unspecified means "directly connected": forward to the destination
    /// itself on the output interface.
    util::Ipv4Address next_hop;
    std::size_t ifindex = 0;
    /// Routing-protocol metric (hop count for DV); 0 for connected/static.
    std::uint32_t metric = 0;
    /// Provenance tag: "connected", "static", "dv", "egp". Distributed-
    /// management experiments use this to audit who installed what.
    std::string origin = "static";
};

class RoutingTable {
public:
    /// Installs or replaces the route for exactly this prefix.
    void install(const Route& route);

    /// Removes the route for exactly this prefix; returns whether found.
    bool remove(const util::Ipv4Prefix& prefix);

    /// Removes every route whose origin matches (e.g. flush "dv" routes).
    void remove_by_origin(const std::string& origin);

    /// Longest-prefix match.
    std::optional<Route> lookup(util::Ipv4Address dst) const;

    /// Exact-prefix fetch (for routing protocols comparing metrics).
    std::optional<Route> find(const util::Ipv4Prefix& prefix) const;

    const std::vector<Route>& routes() const noexcept { return routes_; }
    std::size_t size() const noexcept { return routes_.size(); }

private:
    // Kept sorted by descending prefix length so lookup is first-match.
    std::vector<Route> routes_;
};

}  // namespace catenet::ip
