// Longest-prefix-match forwarding table. Shared by hosts (usually one
// connected route plus a default) and gateways (populated statically or by
// the routing protocols in src/routing/).
//
// Built for the forwarding hot path: routes are interned in a stable arena
// so lookup() hands out a pointer (no Route copy, no string copy per
// packet), and a generation counter — bumped on every mutation — lets
// callers layer soft-state caches on top that can never serve a stale
// route (see IpStack's destination cache).
//
// Storage is a flat pointer array kept sorted by (descending prefix
// length, ascending prefix address): every operation — exact find,
// install, remove, and each per-length probe of the longest-prefix match —
// is a binary search, and a 33-bit occupancy mask skips empty lengths, so
// lookup costs O(distinct-lengths × log n) instead of a linear scan.
// Population-scale builds go through bulk_load(): one sort per batch
// rather than one ordered insertion per route.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <span>
#include <string_view>
#include <vector>

#include "util/ip_address.h"

namespace catenet::ip {

/// Provenance of an installed route: who put it there. Distributed-
/// management experiments audit this; flush_routes() keys off it. A small
/// tag rather than a string so that Route is trivially copyable and a
/// per-packet lookup never touches the heap.
class RouteOrigin {
public:
    enum class Tag : std::uint8_t { Connected, Static, Dv, Egp };

    constexpr RouteOrigin() noexcept = default;  ///< "static"
    constexpr RouteOrigin(Tag tag) noexcept : tag_(tag) {}  // NOLINT(google-explicit-constructor)
    /// Named construction keeps the seed's string-based call sites
    /// (`route.origin = "dv"`) working; unknown names throw.
    RouteOrigin(std::string_view name) : tag_(parse(name)) {}  // NOLINT(google-explicit-constructor)
    RouteOrigin(const char* name) : tag_(parse(name)) {}  // NOLINT(google-explicit-constructor)

    constexpr Tag tag() const noexcept { return tag_; }

    constexpr std::string_view view() const noexcept {
        switch (tag_) {
            case Tag::Connected: return "connected";
            case Tag::Static: return "static";
            case Tag::Dv: return "dv";
            case Tag::Egp: return "egp";
        }
        return "static";
    }

    friend constexpr bool operator==(RouteOrigin a, RouteOrigin b) noexcept {
        return a.tag_ == b.tag_;
    }
    // Exact-type overloads so `origin == "dv"` is unambiguous (both
    // RouteOrigin and string_view are one implicit conversion away from a
    // string literal). Comparing against an unknown name is false, not an
    // error — remove_by_origin("bogus") must be a harmless no-op.
    friend constexpr bool operator==(RouteOrigin a, std::string_view b) noexcept {
        return a.view() == b;
    }
    friend constexpr bool operator==(RouteOrigin a, const char* b) noexcept {
        return a.view() == std::string_view(b);
    }

private:
    static Tag parse(std::string_view name);

    Tag tag_ = Tag::Static;
};

std::ostream& operator<<(std::ostream& os, RouteOrigin origin);

struct Route {
    util::Ipv4Prefix prefix;
    /// Unspecified means "directly connected": forward to the destination
    /// itself on the output interface.
    util::Ipv4Address next_hop;
    std::size_t ifindex = 0;
    /// Routing-protocol metric (hop count for DV); 0 for connected/static.
    std::uint32_t metric = 0;
    RouteOrigin origin;
};

/// What lookup()/find() return: a nullable reference to an interned Route.
/// Pointer-shaped (one word, no copy) but optional-flavored so call sites
/// written against the seed's std::optional<Route> keep reading naturally.
/// The pointee lives as long as the table and is updated in place when the
/// same prefix is re-installed.
class RouteRef {
public:
    constexpr RouteRef() noexcept = default;
    constexpr explicit RouteRef(const Route* route) noexcept : route_(route) {}

    constexpr bool has_value() const noexcept { return route_ != nullptr; }
    constexpr explicit operator bool() const noexcept { return route_ != nullptr; }
    constexpr const Route* operator->() const noexcept { return route_; }
    constexpr const Route& operator*() const noexcept { return *route_; }
    constexpr const Route* get() const noexcept { return route_; }

private:
    const Route* route_ = nullptr;
};

class RoutingTable {
public:
    /// Installs or replaces the route for exactly this prefix. A replaced
    /// route is updated in place: pointers previously returned for the
    /// prefix stay valid and observe the new contents. Incremental: one
    /// binary search plus one ordered insertion, never a re-sort.
    void install(const Route& route);

    /// Batch install: same replace-or-insert semantics as install() per
    /// entry (later duplicates in the batch win, matching sequential
    /// installs), but new routes are appended and merged with ONE sort
    /// pass. The topology generator's route-computation path — a hundred
    /// thousand installs arrive as one batch per node. Bumps the
    /// generation once for a non-empty batch.
    void bulk_load(std::span<const Route> routes);

    /// Removes the route for exactly this prefix; returns whether found.
    bool remove(const util::Ipv4Prefix& prefix);

    /// Removes every route whose origin matches (e.g. flush "dv" routes).
    void remove_by_origin(std::string_view origin);

    /// Longest-prefix match. The referenced Route is interned: valid for
    /// the table's lifetime, never copied per lookup.
    RouteRef lookup(util::Ipv4Address dst) const;

    /// Exact-prefix fetch (for routing protocols comparing metrics).
    RouteRef find(const util::Ipv4Prefix& prefix) const;

    /// Snapshot of the table in longest-prefix-first order.
    std::vector<Route> routes() const;

    std::size_t size() const noexcept { return ordered_.size(); }

    /// Bumped by every mutation (install, remove, remove_by_origin) that
    /// changes the table. Soft-state caches compare generations instead of
    /// registering invalidation hooks: a stale cache line is simply one
    /// whose generation no longer matches, and dropping it costs one LPM.
    std::uint64_t generation() const noexcept { return generation_; }

private:
    Route* acquire_node(const Route& route);
    /// Iterator to the route with exactly this (length, address) key, or
    /// ordered_.end() — one binary search.
    std::vector<Route*>::iterator find_slot(const util::Ipv4Prefix& prefix);
    std::vector<Route*>::const_iterator find_slot(const util::Ipv4Prefix& prefix) const;
    void note_added(int length) noexcept;
    void note_removed(int length) noexcept;

    /// Interned storage: a deque never moves elements, and removed nodes
    /// go to a free list rather than back to the allocator, so a Route*
    /// stays dereferenceable for the table's lifetime no matter what is
    /// installed or removed after it.
    std::deque<Route> arena_;
    std::vector<Route*> free_nodes_;
    /// Sorted by (descending prefix length, ascending prefix address):
    /// binary-searchable, and still longest-prefix-first for first-match
    /// iteration and the routes() snapshot.
    std::vector<Route*> ordered_;
    /// Routes per prefix length, plus a 33-bit occupancy mask (bit = a
    /// length with at least one route) so lookup() probes only lengths
    /// that exist — typically 2–3 even in a population-scale FIB.
    std::array<std::uint32_t, 33> len_count_{};
    std::uint64_t len_mask_ = 0;
    std::uint64_t generation_ = 1;
};

}  // namespace catenet::ip
