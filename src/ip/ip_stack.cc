#include "ip/ip_stack.h"

#include <algorithm>
#include <bit>

#include "ip/protocols.h"
#include "util/logging.h"

namespace catenet::ip {

namespace {
const util::Logger kLog("ip");

inline std::uint16_t load_u16(const std::uint8_t* p) noexcept {
    return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]);
}

inline std::uint32_t load_u32(const std::uint8_t* p) noexcept {
    return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
           (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}
}  // namespace

IpStack::IpStack(sim::Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)), reassembler_(sim) {
    reassembler_.set_counters(&counters_);
}

std::size_t IpStack::add_interface(link::NetIf& netif, util::Ipv4Address addr,
                                   util::Ipv4Prefix subnet) {
    const std::size_t ifindex = interfaces_.size();
    interfaces_.push_back(Interface{&netif, addr, subnet, netif.mtu()});
    netif.set_address(addr);
    netif.set_receiver([this, ifindex](link::Packet&& packet) {
        receive(ifindex, std::move(packet));
    });
    // The burst fast path rides alongside (set after set_receiver, which
    // clears it). Anyone re-tapping the interface with set_receiver gets
    // the per-packet fallback automatically.
    netif.set_burst_receiver([this, ifindex](link::PacketBurst& burst) {
        return receive_burst(ifindex, burst);
    });
    Route connected;
    connected.prefix = subnet;
    connected.ifindex = ifindex;
    connected.origin = "connected";
    routes_.install(connected);
    return ifindex;
}

util::Ipv4Address IpStack::primary_address() const {
    return interfaces_.empty() ? util::Ipv4Address{} : interfaces_.front().address;
}

void IpStack::set_down(bool down) {
    down_ = down;
    if (down) {
        reassembler_.clear();
    }
    for (auto& iface : interfaces_) {
        iface.netif->set_up(!down);
    }
}

void IpStack::flush_routes() {
    // Keep connected routes (re-derived from hardware); drop the rest.
    // Every remove bumps the table generation, so the route cache is
    // implicitly flushed with it.
    auto snapshot = routes_.routes();
    for (const auto& r : snapshot) {
        if (r.origin != "connected") routes_.remove(r.prefix);
    }
}

void IpStack::register_protocol(std::uint8_t protocol, ProtocolHandler handler) {
    protocols_[protocol] = std::move(handler);
}

bool IpStack::is_local_address(util::Ipv4Address addr) const {
    return std::any_of(interfaces_.begin(), interfaces_.end(),
                       [&](const Interface& i) { return i.address == addr; });
}

const Route* IpStack::probe_route_cache(util::Ipv4Address dst, bool& hit) {
    static_assert((kRouteCacheSlots & (kRouteCacheSlots - 1)) == 0);
    // Direct-mapped index: Fibonacci hash of the host-order address,
    // taking the top bits so dense address blocks (10.0.x.y) spread out.
    const std::size_t index =
        (dst.value() * 2654435761u) >> (32 - std::bit_width(kRouteCacheSlots - 1));
    const std::uint64_t generation = routes_.generation();
    RouteCacheEntry& slot = route_cache_[index];
    if (slot.generation != generation || slot.dst != dst) {
        // Miss or stale line: one real LPM refills it. Negative results
        // are cached too (route == nullptr) — a gateway being flooded with
        // unroutable datagrams is exactly when the table scan hurts most.
        hit = false;
        slot.dst = dst;
        slot.route = routes_.lookup(dst).get();
        slot.generation = generation;
    } else {
        hit = true;
    }
    return slot.route;
}

const Route* IpStack::lookup_route(util::Ipv4Address dst) {
    bool hit = false;
    const Route* route = probe_route_cache(dst, hit);
    counters_.inc(hit ? telemetry::Counter::IpRouteCacheHit
                      : telemetry::Counter::IpRouteCacheMiss);
    return route;
}

bool IpStack::send(std::uint8_t protocol, util::Ipv4Address dst,
                   std::span<const std::uint8_t> payload, const SendOptions& options) {
    if (down_) return false;

    // Local loopback: deliver without touching any interface.
    if (is_local_address(dst)) {
        Ipv4Header h;
        h.protocol = protocol;
        h.tos = options.tos;
        h.ttl = options.ttl;
        h.src = options.source.is_unspecified() ? dst : options.source;
        h.dst = dst;
        counters_.inc(telemetry::Counter::IpTx);
        auto data = util::to_buffer(payload);
        sim_.schedule_after(sim::Time(0), [this, h, data = std::move(data)] {
            deliver_local(h, data, 0);
        });
        return true;
    }

    const Route* route = lookup_route(dst);
    if (route == nullptr) {
        counters_.inc(telemetry::Counter::IpDropNoRoute);
        return false;
    }
    Ipv4Header header;
    header.protocol = protocol;
    header.tos = options.tos;
    header.ttl = options.ttl;
    header.dont_fragment = options.dont_fragment;
    header.identification = next_identification_++;
    header.src = options.source.is_unspecified()
                     ? interfaces_.at(route->ifindex).address
                     : options.source;
    header.dst = dst;
    counters_.inc(telemetry::Counter::IpTx);
    note(telemetry::PacketEvent::Tx, header, kIpv4HeaderSize + payload.size());
    return transmit(header, payload, *route);
}

bool IpStack::send_with_headroom(std::uint8_t protocol, util::Ipv4Address dst,
                                 util::ByteBuffer&& wire, const SendOptions& options) {
    const std::span<const std::uint8_t> payload =
        std::span<const std::uint8_t>(wire).subspan(
            std::min(wire.size(), kIpv4HeaderSize));

    // Loopback and fragmentation both need the payload as a plain span, so
    // they reuse the copying machinery; only the fits-the-MTU unicast case
    // below earns the in-place rewrite, and that is the entire hot path.
    if (down_ || is_local_address(dst)) {
        const bool ok = send(protocol, dst, payload, options);
        sim_.buffer_pool().recycle(std::move(wire));
        return ok;
    }

    const Route* route = lookup_route(dst);
    if (route == nullptr) {
        counters_.inc(telemetry::Counter::IpDropNoRoute);
        sim_.buffer_pool().recycle(std::move(wire));
        return false;
    }
    auto& iface = interfaces_.at(route->ifindex);
    Ipv4Header header;
    header.protocol = protocol;
    header.tos = options.tos;
    header.ttl = options.ttl;
    header.dont_fragment = options.dont_fragment;
    header.identification = next_identification_++;
    header.src = options.source.is_unspecified() ? iface.address : options.source;
    header.dst = dst;

    counters_.inc(telemetry::Counter::IpTx);
    note(telemetry::PacketEvent::Tx, header, wire.size());
    if (!iface.netif->is_up()) {
        counters_.inc(telemetry::Counter::IpDropIfaceDown);
        sim_.buffer_pool().recycle(std::move(wire));
        return false;
    }
    if (wire.size() > iface.netif->mtu()) {
        // Must fragment: per-fragment encodes, then retire the big buffer.
        const bool ok = header.dont_fragment ? false : transmit(header, payload, *route);
        sim_.buffer_pool().recycle(std::move(wire));
        return ok;
    }

    write_ipv4_header(wire, header, wire.size());
    const util::Ipv4Address next_hop =
        route->next_hop.is_unspecified() ? dst : route->next_hop;
    link::Packet packet = link::make_packet(std::move(wire), sim_);
    // Both checksums are known good here: the caller vouched for the
    // transport fold and write_ipv4_header just computed the header's.
    packet.csum_ok = options.csum_ok;
    iface.netif->send(std::move(packet), next_hop);
    return true;
}

const Route* IpStack::peek_route(util::Ipv4Address dst) {
    static_assert((kRouteCacheSlots & (kRouteCacheSlots - 1)) == 0);
    const std::size_t index =
        (dst.value() * 2654435761u) >> (32 - std::bit_width(kRouteCacheSlots - 1));
    const RouteCacheEntry& slot = route_cache_[index];
    if (slot.generation == routes_.generation() && slot.dst == dst) {
        return slot.route;
    }
    return routes_.lookup(dst).get();
}

bool IpStack::gso_viable(util::Ipv4Address dst, std::size_t wire_segment_bytes) {
    if (down_ || is_local_address(dst)) return false;
    const Route* route = peek_route(dst);
    if (route == nullptr) return false;
    const Interface& iface = interfaces_[route->ifindex];
    return iface.netif->is_up() && wire_segment_bytes <= iface.mtu;
}

bool IpStack::send_gso(std::uint8_t protocol, util::Ipv4Address dst,
                       link::GsoDescriptor& d, const SendOptions& options) {
    // Uncounted recheck of everything gso_viable promised: a false return
    // must leave no counter trace, so the caller's per-segment fallback
    // reproduces the failure accounting exactly.
    if (down_ || is_local_address(dst)) return false;
    {
        const Route* r = peek_route(dst);
        if (r == nullptr) return false;
        const Interface& ifc = interfaces_[r->ifindex];
        if (!ifc.netif->is_up() || d.proto.size() + d.seg_payload > ifc.mtu) {
            return false;
        }
    }
    const std::size_t n = d.seg_count;
    // One counted probe stands for the train's first segment; the per-
    // segment path's remaining n-1 probes would all hit the line the first
    // one ensured, so they batch as hits.
    const Route* route = lookup_route(dst);
    Interface& iface = interfaces_[route->ifindex];

    Ipv4Header header;
    header.protocol = protocol;
    header.tos = options.tos;
    header.ttl = options.ttl;
    header.dont_fragment = options.dont_fragment;
    header.identification = next_identification_;
    next_identification_ = static_cast<std::uint16_t>(next_identification_ + n);
    header.src = options.source.is_unspecified() ? iface.address : options.source;
    header.dst = dst;
    // First wire segment's IP header becomes the template's IP half; the
    // split advances identification/total_length per segment from it.
    write_ipv4_header({d.proto.data(), kIpv4HeaderSize}, header,
                      d.proto.size() + d.seg_payload);

    counters_.add(telemetry::Counter::IpTx, n);
    counters_.add(telemetry::Counter::IpRouteCacheHit, n - 1);
    if (trace_ || recorder_ != nullptr) {
        // Per-segment Tx notes, field-for-field what n send_with_headroom
        // calls would note (identification advances; total_length stays
        // defaulted there too, the wire size carries the byte count).
        Ipv4Header h = header;
        const std::size_t overhead = d.proto.size();
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t off = i * d.seg_payload;
            const std::size_t len =
                (i + 1 == n) ? d.payload_size() - off : d.seg_payload;
            h.identification = static_cast<std::uint16_t>(header.identification + i);
            note(telemetry::PacketEvent::Tx, h, overhead + len);
        }
    }
    d.sim = &sim_;
    const util::Ipv4Address next_hop =
        route->next_hop.is_unspecified() ? dst : route->next_hop;
    iface.netif->send_gso(d, next_hop);
    return true;
}

void IpStack::set_source_quench(bool on, sim::Time min_interval) {
    source_quench_ = on;
    quench_min_interval_ = min_interval;
    if (!on) return;
    for (std::size_t i = 0; i < interfaces_.size(); ++i) {
        interfaces_[i].netif->set_drop_observer([this](const link::Packet& packet) {
            if (!source_quench_ || down_) return;
            // Rate limit: congestion produces drop storms; one quench per
            // interval is signal enough (RFC 1122 §3.2.2.3 allows this).
            const sim::Time now = sim_.now();
            if (last_quench_ > sim::Time(0) &&
                now - last_quench_ < quench_min_interval_) {
                return;
            }
            last_quench_ = now;
            send_icmp_error(IcmpType::SourceQuench, 0, packet.bytes);
            counters_.inc(telemetry::Counter::IpSourceQuenchSent);
        });
    }
}

bool IpStack::send_broadcast(std::uint8_t protocol, std::size_t ifindex,
                             std::span<const std::uint8_t> payload,
                             const SendOptions& options) {
    if (down_ || ifindex >= interfaces_.size()) return false;
    auto& iface = interfaces_[ifindex];
    if (!iface.netif->is_up()) {
        counters_.inc(telemetry::Counter::IpDropIfaceDown);
        return false;
    }
    Ipv4Header header;
    header.protocol = protocol;
    header.tos = options.tos;
    header.ttl = 1;
    header.identification = next_identification_++;
    header.src = iface.address;
    header.dst = kBroadcastAddress;
    counters_.inc(telemetry::Counter::IpTx);
    auto wire = encode_datagram(header, payload, sim_.buffer_pool());
    iface.netif->send(link::make_packet(std::move(wire), sim_), util::Ipv4Address{});
    return true;
}

bool IpStack::ping(util::Ipv4Address dst, std::uint16_t id, std::uint16_t seq,
                   util::ByteBuffer data, std::uint8_t ttl) {
    const auto msg = IcmpMessage::echo_request(id, seq, std::move(data));
    auto wire = encode_icmp(msg, sim_.buffer_pool());
    SendOptions opts;
    opts.ttl = ttl;
    const bool ok = send(kProtoIcmp, dst, wire, opts);
    sim_.buffer_pool().recycle(std::move(wire));
    return ok;
}

// Fragments (if permitted and necessary) and hands wire datagrams to the
// egress interface. Host-side only in steady state: forwarded datagrams
// that fit the egress MTU bypass this entirely (see forward()'s fast path).
bool IpStack::transmit(const Ipv4Header& header, std::span<const std::uint8_t> payload,
                       const Route& route) {
    auto& iface = interfaces_.at(route.ifindex);
    if (!iface.netif->is_up()) {
        counters_.inc(telemetry::Counter::IpDropIfaceDown);
        return false;
    }
    const util::Ipv4Address next_hop =
        route.next_hop.is_unspecified() ? header.dst : route.next_hop;
    const std::size_t mtu = iface.netif->mtu();

    if (kIpv4HeaderSize + payload.size() <= mtu) {
        auto wire = encode_datagram(header, payload, sim_.buffer_pool());
        iface.netif->send(link::make_packet(std::move(wire), sim_), next_hop);
        return true;
    }

    if (header.dont_fragment) {
        // Cannot fragment: report back (only meaningful when forwarding;
        // locally we just fail the send).
        return false;
    }

    // Fragment: payload chunks of the largest multiple of 8 that fits.
    const std::size_t chunk = ((mtu - kIpv4HeaderSize) / 8) * 8;
    if (chunk == 0) return false;
    const std::size_t base_offset = header.payload_offset_bytes();
    for (std::size_t pos = 0; pos < payload.size(); pos += chunk) {
        const std::size_t len = std::min(chunk, payload.size() - pos);
        Ipv4Header frag = header;
        frag.fragment_offset = static_cast<std::uint16_t>((base_offset + pos) / 8);
        frag.more_fragments = header.more_fragments || (pos + len < payload.size());
        auto wire = encode_datagram(frag, payload.subspan(pos, len), sim_.buffer_pool());
        counters_.inc(telemetry::Counter::IpFragsCreated);
        iface.netif->send(link::make_packet(std::move(wire), sim_), next_hop);
    }
    return true;
}

void IpStack::receive(std::size_t ifindex, link::Packet packet) {
    if (down_) {
        recycle_wire(packet);
        return;
    }
    counters_.inc(telemetry::Counter::IpRx);

    DecodedDatagram d;
    bool checksum_ok = false;
    try {
        // csum_ok packets skip the header fold (it would provably pass:
        // the encoder computed it and no hop corrupted the bytes).
        checksum_ok = decode_datagram(packet.bytes, d, !packet.csum_ok);
    } catch (const util::DecodeError&) {
        // Same drop event as every other discard; the header carries
        // whatever fields decoded before the failure (best effort, exactly
        // what a wire sniffer would report for a mangled datagram).
        counters_.inc(telemetry::Counter::IpDropMalformed);
        note(telemetry::PacketEvent::Drop, d.header, packet.size(),
             telemetry::DropReason::Malformed);
        recycle_wire(packet);
        return;
    }
    if (!checksum_ok) {
        counters_.inc(telemetry::Counter::IpDropChecksum);
        note(telemetry::PacketEvent::Drop, d.header, packet.size(),
             telemetry::DropReason::Checksum);
        recycle_wire(packet);
        return;
    }
    process_datagram(d, packet, ifindex, nullptr, nullptr);
    recycle_wire(packet);  // no-op when the fast path moved the buffer on
}

void IpStack::process_datagram(const DecodedDatagram& d, link::Packet& packet,
                               std::size_t ifindex, RouteMemo* memo,
                               ForwardLocals* locals) {
    note(telemetry::PacketEvent::Rx, d.header, packet.size());

    const auto payload = payload_of(packet.bytes, d);

    if (is_local_address(d.header.dst) || d.header.dst == kBroadcastAddress) {
        if (d.header.is_fragment()) {
            auto completed = reassembler_.add_fragment(d.header, payload);
            if (completed) deliver_local(d.header, *completed, ifindex);
        } else {
            // Ambient checksum-offload vouch for the transport being
            // dispatched (fragments never qualify: reassembly rewrote the
            // bytes the encoder checksummed over).
            rx_csum_ok_ = packet.csum_ok;
            deliver_local(d.header, payload, ifindex);
            rx_csum_ok_ = false;
        }
        return;
    }

    if (!forwarding_) {
        counters_.inc(telemetry::Counter::IpDropNotForUs);
        return;
    }
    forward(d, packet, ifindex, memo, locals);
}

std::size_t IpStack::receive_burst(std::size_t ifindex, link::PacketBurst& burst) {
    const std::size_t n = burst.count;

    // Pass 1 — decode. Headers land in a stack-resident descriptor array;
    // the next packet's wire bytes are prefetched while the current one
    // decodes (prefetch distance 1: by the time a 20-byte header is
    // parsed and checksummed, the next line is in L1). Decoding reads
    // immutable in-flight bytes and touches no observable state, so doing
    // it at the head arrival instant — before the clock reaches the later
    // packets — cannot be distinguished from per-packet decode.
    std::array<DecodedDatagram, link::kBurst> d;
    std::array<DecodeStatus, link::kBurst> status;
    std::array<bool, link::kBurst> lane;
    // With no tracer or recorder attached, the only header fields a
    // checksum-vouched run-protocol datagram feeds downstream are src,
    // dst, protocol and total length — every other field exists to feed
    // note(), which both observers being absent makes a no-op. Such
    // packets are classified here with four loads (fixed 20-byte header,
    // run protocol, not a fragment, total length == wire length) and even
    // the minimal unpack is deferred to the commit pass (DESIGN.md §12).
    // Observers can only attach from an event, events only run on a bail,
    // and a bail abandons the rest of the burst — so the choice made here
    // cannot go stale before pass 2 reads it.
    const bool quick_lane_ok =
        run_handler_ != nullptr && !trace_ && recorder_ == nullptr;
    for (std::size_t i = 0; i < n; ++i) {
        if (i + 1 < n) {
            const auto& next_bytes = burst.items[i + 1].packet->bytes;
            if (!next_bytes.empty()) __builtin_prefetch(next_bytes.data());
        }
        const auto& bytes = burst.items[i].packet->bytes;
        if (quick_lane_ok && burst.items[i].packet->csum_ok &&
            bytes.size() >= kIpv4HeaderSize) {
            const std::uint8_t* p = bytes.data();
            if (p[0] == 0x45 && p[9] == run_protocol_ &&
                (load_u16(p + 6) & 0x3fffu) == 0 &&
                load_u16(p + 2) == bytes.size()) {
                lane[i] = true;
                status[i] = DecodeStatus::Ok;
                continue;
            }
        }
        lane[i] = false;
        status[i] = decode_datagram_status(bytes, d[i],
                                           !burst.items[i].packet->csum_ok);
    }

    // Pass 2 — commit, one packet at a time at its own arrival instant.
    // Route lookups go through a burst-local memo (RouteMemo) so a run to
    // one next-hop costs one real probe; TTL rewrite and egress hand-off
    // happen in forward()'s in-place fast path. The memo's generation
    // check runs per packet, so a routing change that lands on a bail
    // between two arrivals invalidates it exactly as it would invalidate
    // the per-packet cache. Hot counters batch in `locals` and flush
    // before returning — i.e. before whichever event caused a bail runs.
    RouteMemo memo;
    ForwardLocals locals;
    bool in_run = false;  // a GRO run is open in the run handler
    std::size_t i = 0;
    for (; i < n; ++i) {
        if (i > 0 && !sim_.advance_if_idle(burst.items[i].arrival)) break;
        link::Packet packet = std::move(*burst.items[i].packet);
        if (down_) {
            recycle_wire(packet);
            continue;
        }
        ++locals.rx;
        if (lane[i]) {
            // Quick-classified in pass 1: unpack exactly the four fields
            // the run handler and its decline path read, skip the rest of
            // the decode. Counter effects match the full lane below; the
            // Rx/Deliver notes it would emit are no-ops by construction
            // (pass 1 required both observers absent).
            const std::uint8_t* p = packet.bytes.data();
            const util::Ipv4Address dst(load_u32(p + 16));
            if (is_local_address(dst)) {
                Ipv4Header& h = d[i].header;
                h.src = util::Ipv4Address(load_u32(p + 12));
                h.dst = dst;
                h.protocol = run_protocol_;
                h.total_length = static_cast<std::uint16_t>(packet.bytes.size());
                const auto payload =
                    std::span<const std::uint8_t>(packet.bytes).subspan(kIpv4HeaderSize);
                counters_.inc(telemetry::Counter::IpDeliver);
                if (run_handler_->on_run_segment(h, payload, ifindex)) {
                    in_run = true;
                } else {
                    if (in_run) { run_handler_->end_run(); in_run = false; }
                    rx_csum_ok_ = true;
                    run_handler_->on_datagram(h, payload, ifindex);
                    rx_csum_ok_ = false;
                }
                recycle_wire(packet);
                continue;
            }
            // Transit traffic at a forwarding node: fall back to the full
            // decode and take the ordinary dispatch below (status is Ok by
            // the pass-1 screen; the vouch skips the checksum verify).
            status[i] = decode_datagram_status(packet.bytes, d[i], false);
        }
        if (status[i] == DecodeStatus::Malformed) {
            if (in_run) { run_handler_->end_run(); in_run = false; }
            counters_.inc(telemetry::Counter::IpDropMalformed);
            note(telemetry::PacketEvent::Drop, d[i].header, packet.size(),
                 telemetry::DropReason::Malformed);
            recycle_wire(packet);
            continue;
        }
        if (status[i] == DecodeStatus::BadChecksum) {
            if (in_run) { run_handler_->end_run(); in_run = false; }
            counters_.inc(telemetry::Counter::IpDropChecksum);
            note(telemetry::PacketEvent::Drop, d[i].header, packet.size(),
                 telemetry::DropReason::Checksum);
            recycle_wire(packet);
            continue;
        }
        // GRO lane (DESIGN.md §12): a checksum-vouched, non-fragment
        // datagram of the run protocol addressed to this host is offered
        // straight to the run handler — same Rx/Deliver notes and counts
        // as process_datagram → deliver_local would have produced, then
        // one handler call instead of the map probe + full dispatch.
        if (run_handler_ != nullptr && packet.csum_ok &&
            d[i].header.protocol == run_protocol_ && !d[i].header.is_fragment() &&
            is_local_address(d[i].header.dst)) {
            const Ipv4Header& h = d[i].header;
            const auto payload = payload_of(packet.bytes, d[i]);
            note(telemetry::PacketEvent::Rx, h, packet.size());
            counters_.inc(telemetry::Counter::IpDeliver);
            note(telemetry::PacketEvent::Deliver, h,
                 kIpv4HeaderSize + payload.size());
            if (run_handler_->on_run_segment(h, payload, ifindex)) {
                in_run = true;
            } else {
                // Declined (odd flags, out of order, …): close the run at
                // this boundary and hand the segment to the ordinary
                // per-datagram entry, checksum vouch still in effect.
                if (in_run) { run_handler_->end_run(); in_run = false; }
                rx_csum_ok_ = true;
                run_handler_->on_datagram(h, payload, ifindex);
                rx_csum_ok_ = false;
            }
            recycle_wire(packet);
            continue;
        }
        if (in_run) { run_handler_->end_run(); in_run = false; }
        process_datagram(d[i], packet, ifindex, &memo, &locals);
        recycle_wire(packet);  // no-op when forwarding moved the buffer on
    }
    if (in_run) run_handler_->end_run();
    counters_.add(telemetry::Counter::IpRx, locals.rx);
    counters_.add(telemetry::Counter::IpFwd, locals.fwd);
    counters_.add(telemetry::Counter::IpRouteCacheHit, locals.cache_hits);
    counters_.add(telemetry::Counter::IpRouteCacheMiss, locals.cache_misses);
    return i;
}

void IpStack::deliver_local(const Ipv4Header& header, std::span<const std::uint8_t> payload,
                            std::size_t ifindex) {
    counters_.inc(telemetry::Counter::IpDeliver);
    note(telemetry::PacketEvent::Deliver, header, kIpv4HeaderSize + payload.size());
    if (header.protocol == kProtoIcmp) {
        handle_icmp(header, payload);
    }
    auto it = protocols_.find(header.protocol);
    if (it != protocols_.end()) {
        it->second(header, payload, ifindex);
    } else if (header.protocol != kProtoIcmp) {
        // Reconstruct enough of the offending datagram.
        auto offending = encode_datagram(
            header, payload.subspan(0, std::min<std::size_t>(payload.size(), 8)),
            sim_.buffer_pool());
        send_icmp_error(IcmpType::DestinationUnreachable, kUnreachProtocol, offending);
        sim_.buffer_pool().recycle(std::move(offending));
    }
}

void IpStack::forward(const DecodedDatagram& d, link::Packet& packet,
                      std::size_t in_ifindex, RouteMemo* memo, ForwardLocals* locals) {
    (void)in_ifindex;
    const Ipv4Header& header = d.header;
    const std::span<const std::uint8_t> wire = packet.bytes;
    if (header.ttl <= 1) {
        counters_.inc(telemetry::Counter::IpDropTtlExpired);
        note(telemetry::PacketEvent::Drop, header, wire.size(),
             telemetry::DropReason::TtlExpired);
        send_icmp_error(IcmpType::TimeExceeded, 0, wire);
        return;
    }
    const Route* route;
    if (memo != nullptr) {
        // Burst path: the memo answers repeats without re-hashing. A memo
        // hit is counted as the cache hit the per-packet probe would have
        // scored — same dst and unchanged generation mean the
        // direct-mapped line it refilled still matches.
        const std::uint64_t generation = routes_.generation();
        if (memo->valid && memo->dst == header.dst && memo->generation == generation) {
            ++locals->cache_hits;
            route = memo->route;
        } else {
            bool hit = false;
            route = probe_route_cache(header.dst, hit);
            if (hit) {
                ++locals->cache_hits;
            } else {
                ++locals->cache_misses;
            }
            memo->dst = header.dst;
            memo->route = route;
            memo->generation = generation;
            memo->valid = true;
        }
    } else {
        route = lookup_route(header.dst);
    }
    if (route == nullptr) {
        counters_.inc(telemetry::Counter::IpDropNoRoute);
        note(telemetry::PacketEvent::Drop, header, wire.size(),
             telemetry::DropReason::NoRoute);
        send_icmp_error(IcmpType::DestinationUnreachable, kUnreachNet, wire);
        return;
    }

    const Interface& iface = interfaces_[route->ifindex];
    const std::size_t mtu = iface.mtu;
    if (header.dont_fragment && std::size_t{header.total_length} > mtu) {
        send_icmp_error(IcmpType::DestinationUnreachable, kUnreachFragNeeded, wire);
        return;
    }

    // Fast path — the overwhelmingly common shape: no IP options, no link
    // trailer, fits the egress MTU. The datagram is never re-serialized:
    // TTL is decremented in the received bytes, the checksum patched
    // incrementally (RFC 1624), and the owned buffer moves straight to the
    // egress queue. Zero copies, zero allocations.
    if (d.header_length == kIpv4HeaderSize && wire.size() == header.total_length &&
        wire.size() <= mtu) {
        if (!iface.netif->is_up()) {
            counters_.inc(telemetry::Counter::IpDropIfaceDown);
            return;
        }
        const std::size_t wire_bytes = wire.size();
        const util::Ipv4Address next_hop =
            route->next_hop.is_unspecified() ? header.dst : route->next_hop;
        decrement_ttl(packet.bytes);
        iface.netif->send(std::move(packet), next_hop);
        if (locals != nullptr) {
            ++locals->fwd;
        } else {
            counters_.inc(telemetry::Counter::IpFwd);
        }
        if (trace_ || forward_tap_ || recorder_ != nullptr) {
            // Observers want the header as sent; built only when someone
            // is actually watching.
            Ipv4Header out = header;
            out.ttl = static_cast<std::uint8_t>(header.ttl - 1);
            note(telemetry::PacketEvent::Fwd, out, wire_bytes);
            if (forward_tap_) forward_tap_(out, wire_bytes);
        }
        return;
    }

    Ipv4Header out = header;
    out.ttl = static_cast<std::uint8_t>(header.ttl - 1);

    // Slow path (IP options, link padding, or fragmentation ahead): decode
    // and re-serialize exactly as the seed did. Re-serializing copies the
    // transport bytes into fresh unvouched datagrams (a fragment's payload
    // carries the TCP checksum field verbatim), so a deferred checksum
    // must be settled here — this is a byte observer.
    if (packet.csum_deferred) link::materialize_checksum(packet);
    const auto payload = payload_of(wire, d);
    if (transmit(out, payload, *route)) {
        if (locals != nullptr) {
            ++locals->fwd;
        } else {
            counters_.inc(telemetry::Counter::IpFwd);
        }
        note(telemetry::PacketEvent::Fwd, out, wire.size());
        if (forward_tap_) forward_tap_(out, wire.size());
    }
}

void IpStack::handle_icmp(const Ipv4Header& header, std::span<const std::uint8_t> payload) {
    auto msg = decode_icmp(payload);
    if (!msg) return;
    switch (msg->type) {
        case IcmpType::EchoRequest: {
            const auto reply = IcmpMessage::echo_reply(*msg);
            auto wire = encode_icmp(reply, sim_.buffer_pool());
            SendOptions opts;
            opts.source = header.dst;
            send(kProtoIcmp, header.src, wire, opts);
            sim_.buffer_pool().recycle(std::move(wire));
            break;
        }
        case IcmpType::DestinationUnreachable:
        case IcmpType::SourceQuench:
        case IcmpType::TimeExceeded:
            for (const auto& handler : icmp_error_handlers_) handler(*msg, header.src);
            break;
        default:
            break;
    }
}

void IpStack::send_icmp_error(IcmpType type, std::uint8_t code,
                              std::span<const std::uint8_t> offending_wire) {
    // RFC 1122 restraint: never generate errors about ICMP errors or about
    // non-first fragments.
    try {
        DecodedDatagram d;
        if (!decode_datagram(offending_wire, d)) return;
        if (d.header.fragment_offset != 0) return;
        if (d.header.dst == kBroadcastAddress) return;  // never error on broadcasts
        if (d.header.protocol == kProtoIcmp) {
            auto inner = decode_icmp(payload_of(offending_wire, d));
            if (inner && inner->type != IcmpType::EchoRequest &&
                inner->type != IcmpType::EchoReply) {
                return;
            }
        }
        IcmpMessage msg = IcmpMessage::error(type, code, offending_wire);
        auto wire = encode_icmp(msg, sim_.buffer_pool());
        const bool sent = send(kProtoIcmp, d.header.src, wire);
        sim_.buffer_pool().recycle(std::move(wire));
        sim_.buffer_pool().recycle(std::move(msg.body));
        if (sent) {
            counters_.inc(telemetry::Counter::IpIcmpErrorsSent);
        }
    } catch (const util::DecodeError&) {
        // Too mangled to attribute; stay silent.
    }
}

}  // namespace catenet::ip
