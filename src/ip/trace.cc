#include "ip/trace.h"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "ip/protocols.h"

namespace catenet::ip {

std::string protocol_name(std::uint8_t protocol) {
    switch (protocol) {
        case kProtoIcmp: return "ICMP";
        case kProtoTcp: return "TCP";
        case kProtoUdp: return "UDP";
        case kProtoEgp: return "EGP";
        case kProtoDistanceVector: return "DV";
        default: return std::to_string(protocol);
    }
}

std::string format_trace_line(double now_seconds, const std::string& name,
                              const char* event, const Ipv4Header& header,
                              std::size_t wire_bytes) {
    std::ostringstream os;
    os << "[" << std::fixed << std::setprecision(6) << std::setw(11)
       << now_seconds << "] " << name << " "
       << std::left << std::setw(7) << event << std::right << " "
       << header.src.to_string() << " > " << header.dst.to_string() << " "
       << protocol_name(header.protocol) << " " << wire_bytes << "B ttl="
       << int(header.ttl);
    if (header.tos != 0) os << " tos=0x" << std::hex << int(header.tos) << std::dec;
    if (header.is_fragment()) {
        os << " frag=" << header.payload_offset_bytes()
           << (header.more_fragments ? "+" : "$");
    }
    os << "\n";
    return os.str();
}

TraceFn make_text_tracer(std::ostream& os, std::string name,
                         const sim::Simulator& sim) {
    return [&os, name = std::move(name), &sim](const char* event,
                                                const Ipv4Header& header,
                                                std::size_t wire_bytes) {
        os << format_trace_line(sim.now().seconds(), name, event, header, wire_bytes);
    };
}

std::size_t TraceCollector::add_lane(std::string name) {
    lanes_.push_back(std::make_unique<Lane>());
    lanes_.back()->name = std::move(name);
    return lanes_.size() - 1;
}

TraceFn TraceCollector::make_tracer(std::size_t lane, std::string node_name,
                                    const sim::Simulator& sim) {
    Lane* l = lanes_.at(lane).get();
    return [l, node_name = std::move(node_name), &sim](const char* event,
                                                        const Ipv4Header& header,
                                                        std::size_t wire_bytes) {
        l->entries.push_back(Entry{
            sim.now().nanos(),
            format_trace_line(sim.now().seconds(), node_name, event, header,
                              wire_bytes)});
    };
}

const std::string& TraceCollector::lane_name(std::size_t lane) const {
    return lanes_.at(lane)->name;
}

std::string TraceCollector::lane_text(std::size_t lane) const {
    const Lane& l = *lanes_.at(lane);
    std::size_t total = 0;
    for (const Entry& e : l.entries) total += e.text.size();
    std::string out;
    out.reserve(total);
    for (const Entry& e : l.entries) out += e.text;
    return out;
}

std::string TraceCollector::merged() const {
    // Per-lane entries are already time-sorted (each lane's clock is
    // monotone), so a k-way index merge suffices; ties resolve to the
    // lower lane id, then per-lane order.
    std::vector<std::size_t> pos(lanes_.size(), 0);
    std::size_t remaining = 0;
    std::size_t bytes = 0;
    for (const auto& l : lanes_) {
        remaining += l->entries.size();
        for (const Entry& e : l->entries) bytes += e.text.size();
    }
    std::string out;
    out.reserve(bytes);
    while (remaining > 0) {
        std::size_t best = lanes_.size();
        std::int64_t best_t = 0;
        for (std::size_t i = 0; i < lanes_.size(); ++i) {
            if (pos[i] >= lanes_[i]->entries.size()) continue;
            const std::int64_t t = lanes_[i]->entries[pos[i]].t_ns;
            if (best == lanes_.size() || t < best_t) {
                best = i;
                best_t = t;
            }
        }
        out += lanes_[best]->entries[pos[best]].text;
        ++pos[best];
        --remaining;
    }
    return out;
}

std::size_t TraceCollector::total_entries() const noexcept {
    std::size_t n = 0;
    for (const auto& l : lanes_) n += l->entries.size();
    return n;
}

}  // namespace catenet::ip
