#include "ip/trace.h"

#include <iomanip>
#include <ostream>

#include "ip/protocols.h"

namespace catenet::ip {

std::string protocol_name(std::uint8_t protocol) {
    switch (protocol) {
        case kProtoIcmp: return "ICMP";
        case kProtoTcp: return "TCP";
        case kProtoUdp: return "UDP";
        case kProtoEgp: return "EGP";
        case kProtoDistanceVector: return "DV";
        default: return std::to_string(protocol);
    }
}

TraceFn make_text_tracer(std::ostream& os, std::string name,
                         const sim::Simulator& sim) {
    return [&os, name = std::move(name), &sim](const char* event,
                                                const Ipv4Header& header,
                                                std::size_t wire_bytes) {
        os << "[" << std::fixed << std::setprecision(6) << std::setw(11)
           << sim.now().seconds() << "] " << name << " "
           << std::left << std::setw(7) << event << std::right << " "
           << header.src.to_string() << " > " << header.dst.to_string() << " "
           << protocol_name(header.protocol) << " " << wire_bytes << "B ttl="
           << int(header.ttl);
        if (header.tos != 0) os << " tos=0x" << std::hex << int(header.tos) << std::dec;
        if (header.is_fragment()) {
            os << " frag=" << header.payload_offset_bytes()
               << (header.more_fragments ? "+" : "$");
        }
        os << "\n";
    };
}

}  // namespace catenet::ip
