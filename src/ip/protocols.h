// IP protocol numbers used in this internet. ICMP/TCP/UDP/EGP carry their
// IANA values; the distance-vector protocol uses a number from the
// unassigned range (documented simulator convention — real RIP rides UDP,
// but running routing directly over IP keeps the layering of the original
// gateway implementations, which spoke GGP/EGP directly over IP).
#pragma once

#include <cstdint>

namespace catenet::ip {

inline constexpr std::uint8_t kProtoIcmp = 1;
inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoEgp = 8;
inline constexpr std::uint8_t kProtoUdp = 17;
inline constexpr std::uint8_t kProtoDistanceVector = 103;

}  // namespace catenet::ip
