// RFC 792 ICMP messages: echo, destination unreachable, time exceeded.
// Error messages quote the offending datagram's header plus 8 payload
// bytes, exactly as the RFC prescribes, so transports can match errors to
// connections.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "util/buffer_pool.h"
#include "util/byte_buffer.h"
#include "util/ip_address.h"

namespace catenet::ip {

enum class IcmpType : std::uint8_t {
    EchoReply = 0,
    DestinationUnreachable = 3,
    SourceQuench = 4,  ///< the 1988 congestion signal (RFC 792/896)
    EchoRequest = 8,
    TimeExceeded = 11,
};

// Codes for DestinationUnreachable.
inline constexpr std::uint8_t kUnreachNet = 0;
inline constexpr std::uint8_t kUnreachHost = 1;
inline constexpr std::uint8_t kUnreachProtocol = 2;
inline constexpr std::uint8_t kUnreachPort = 3;
inline constexpr std::uint8_t kUnreachFragNeeded = 4;

struct IcmpMessage {
    IcmpType type = IcmpType::EchoReply;
    std::uint8_t code = 0;
    /// Second header word: echo id/seq, or unused for errors.
    std::uint32_t rest = 0;
    /// Echo data, or the quoted offending header + 8 bytes for errors.
    util::ByteBuffer body;

    static IcmpMessage echo_request(std::uint16_t id, std::uint16_t seq,
                                    util::ByteBuffer data);
    static IcmpMessage echo_reply(const IcmpMessage& request);
    static IcmpMessage error(IcmpType type, std::uint8_t code,
                             std::span<const std::uint8_t> offending_datagram);

    std::uint16_t echo_id() const noexcept { return static_cast<std::uint16_t>(rest >> 16); }
    std::uint16_t echo_seq() const noexcept { return static_cast<std::uint16_t>(rest & 0xffff); }
};

/// Serializes with the ICMP checksum filled in.
util::ByteBuffer encode_icmp(const IcmpMessage& msg);

/// Pool-recycling variant (identical bytes): ICMP generation happens on
/// gateways under stress — echo replies, unreachables, quenches — and
/// should not allocate once the pool is warm.
util::ByteBuffer encode_icmp(const IcmpMessage& msg, util::BufferPool& pool);

/// Returns nullopt when the checksum is invalid; throws util::DecodeError
/// when structurally malformed.
std::optional<IcmpMessage> decode_icmp(std::span<const std::uint8_t> wire);

}  // namespace catenet::ip
