// Packet voice — the paper's third service type, and its sharpest goal-2
// argument: "it was decided to take the unreliable datagram service and
// make it available directly" because reliable delivery's retransmission
// stalls are *worse* than a lost sample for real-time speech. A constant-
// bit-rate source emits timestamped frames; the sink plays them through a
// jitter buffer and records latency, jitter, loss and late arrivals.
// The source can run over UDP (the architecture's answer) or over TCP
// (the mismatched service) — E2 compares the two.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "core/node.h"
#include "util/stats.h"

namespace catenet::app {

struct VoiceConfig {
    sim::Time frame_interval = sim::milliseconds(20);  ///< 50 packets/s
    std::size_t frame_bytes = 160;                     ///< 64 kbit/s PCM
    std::uint8_t tos = 0x10;                           ///< low-delay ToS bit
    /// Jitter-buffer playout delay: a frame arriving later than
    /// (send time + playout_delay) is useless ("late").
    sim::Time playout_delay = sim::milliseconds(150);
};

struct VoiceReport {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t frames_late = 0;   ///< arrived after their playout time
    std::uint64_t frames_lost = 0;   ///< never arrived (computed at report time)
    double loss_fraction = 0.0;
    double usable_fraction = 0.0;    ///< on-time frames / sent
    double mean_latency_ms = 0.0;
    double p95_latency_ms = 0.0;
    double p99_latency_ms = 0.0;
    double jitter_ms = 0.0;          ///< mean |delta inter-arrival - interval|
};

/// Receiving side; works for both transports (frames carry their own
/// sequence and timestamp).
class VoiceSink {
public:
    explicit VoiceSink(VoiceConfig config) : config_(config) {}

    /// Feed one decoded frame (seq, source timestamp) arriving `now`.
    void on_frame(std::uint32_t seq, sim::Time sent_at, sim::Time now);

    VoiceReport report(std::uint64_t frames_sent) const;

private:
    VoiceConfig config_;
    std::uint64_t received_ = 0;
    std::uint64_t late_ = 0;
    util::Percentiles latencies_ms_;
    util::RunningStats jitter_ms_;
    bool have_last_ = false;
    sim::Time last_arrival_;
};

/// CBR voice over UDP.
class VoiceOverUdp {
public:
    VoiceOverUdp(core::Host& sender, core::Host& receiver, std::uint16_t port,
                 VoiceConfig config = {});

    void start(sim::Time duration);
    VoiceReport report() const { return sink_.report(sent_); }

private:
    void send_frame();

    core::Host& sender_;
    VoiceConfig config_;
    std::unique_ptr<udp::UdpSocket> tx_;
    std::unique_ptr<udp::UdpSocket> rx_;
    util::Ipv4Address dst_;
    std::uint16_t port_;
    VoiceSink sink_;
    sim::PeriodicTimer frame_timer_;
    std::uint32_t seq_ = 0;
    std::uint64_t sent_ = 0;
    sim::Time stop_at_;
};

/// The same CBR stream forced through TCP (length-framed records over the
/// byte stream): what happens when the only service is the reliable one.
class VoiceOverTcp {
public:
    VoiceOverTcp(core::Host& sender, core::Host& receiver, std::uint16_t port,
                 VoiceConfig config = {}, tcp::TcpConfig tcp_config = {});

    void start(sim::Time duration);
    VoiceReport report() const { return sink_.report(sent_); }

private:
    void send_frame();
    void on_bytes(std::span<const std::uint8_t> data);

    core::Host& sender_;
    core::Host& receiver_;
    VoiceConfig config_;
    std::shared_ptr<tcp::TcpSocket> tx_;
    VoiceSink sink_;
    sim::PeriodicTimer frame_timer_;
    std::uint32_t seq_ = 0;
    std::uint64_t sent_ = 0;
    sim::Time stop_at_;
    util::ByteBuffer rx_accum_;
};

}  // namespace catenet::app
