// Scenario description language: build and run an internetwork from a
// small text format, so experiments can be sketched without writing C++.
// Used by the `run_scenario` example binary and scriptable benchmarks.
//
//   # comment                      (blank lines ignored)
//   generate two_tier 8 16 61 full # deterministic AS-like internet: 8-gateway
//                                  #   mesh, 16 LANs x 61 hosts (gw<i>,
//                                  #   h<lan>_<host>); `compact` for array-only
//                                  #   hosts, seed=N to pin the shape; installs
//                                  #   static routes
//   host alice
//   host bob
//   gateway g1
//   gateway g2
//   lan office                     # shared Ethernet segment
//   attach alice office
//   attach g1 office
//   link g1 g2 satellite           # technologies: ethernet, leased56k,
//   link g2 bob ethernet loss=0.01 #   satellite, radio, serial1200, x25
//   routing dv                     # or: routing static
//   transfer alice bob 1M          # bulk TCP (K/M suffixes)
//   voice alice bob 30s            # CBR voice over UDP
//   echo bob                       # echo server (for interactive below)
//   interactive alice bob 60s      # typist with RTT measurement
//   fail g1 at 20s for 5s          # crash/restore a node mid-run
//   queue g1 g2 fair               # egress discipline at g1 toward g2:
//                                  #   fair (DRR by flow) or priority (ToS)
//   run 120s
//
// `run` executes everything and is required last. Link options:
// loss=<fraction>, rate=<bits/s>, delay=<ms>, mtu=<bytes>.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app/bulk.h"
#include "app/interactive.h"
#include "app/voice.h"
#include "core/internetwork.h"

namespace catenet::app {

/// Outcome of one scenario run, for programmatic checks and printing.
struct ScenarioReport {
    struct Transfer {
        std::string src, dst;
        std::uint64_t bytes;
        bool completed;
        double seconds;
        double goodput_bps;
        std::uint64_t retransmits;
    };
    struct Voice {
        std::string src, dst;
        app::VoiceReport report;
    };
    struct Interactive {
        std::string src, dst;
        std::uint64_t keystrokes;
        std::uint64_t echoes;
        double rtt_p50_ms;
        double rtt_p99_ms;
    };

    double simulated_seconds = 0;
    std::uint64_t events = 0;
    std::uint64_t total_link_bytes = 0;
    std::vector<Transfer> transfers;
    std::vector<Voice> voices;
    std::vector<Interactive> interactives;

    void print(std::ostream& os) const;
};

/// Parse error with a line number.
class ScenarioError : public std::runtime_error {
public:
    ScenarioError(int line, const std::string& what)
        : std::runtime_error("line " + std::to_string(line) + ": " + what) {}
};

/// Parses and runs a scenario; throws ScenarioError on bad input.
ScenarioReport run_scenario(const std::string& text, std::uint64_t seed = 1);

}  // namespace catenet::app
