// XNET — the cross-Internet debugger the paper cites by name as a service
// that *cannot* ride on TCP: "it did not seem natural to reconstruct [a
// debugger] out of a reliable stream... if the target machine is
// misbehaving, reliable communication may be impossible; the debugger
// must function in the face of packet loss" (paraphrasing §types of
// service). So it runs on bare datagrams: every request is idempotent
// (peek/poke absolute addresses, halt, continue), the client retries on
// its own timer, and duplicate replies are harmless.
//
// The "target machine" is a simulated memory image whose host may be
// crashing and restarting — which is exactly when you need the debugger.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/node.h"

namespace catenet::app {

/// Debug target: exposes a flat memory image and a halted/running flag
/// over UDP. Requests are served statelessly.
class XnetTarget {
public:
    XnetTarget(core::Host& host, std::uint16_t port, std::size_t memory_size);

    /// Direct backdoor for tests (the "hardware" view of memory).
    std::uint8_t peek_direct(std::uint32_t addr) const { return memory_.at(addr); }
    void poke_direct(std::uint32_t addr, std::uint8_t value) { memory_.at(addr) = value; }
    bool halted() const noexcept { return halted_; }
    std::uint64_t requests_served() const noexcept { return served_; }

private:
    void on_request(util::Ipv4Address from, std::uint16_t from_port,
                    std::span<const std::uint8_t> request);

    core::Host& host_;
    std::unique_ptr<udp::UdpSocket> socket_;
    std::vector<std::uint8_t> memory_;
    bool halted_ = false;
    std::uint64_t served_ = 0;
};

struct XnetResult {
    bool ok = false;
    std::vector<std::uint8_t> data;  // for peek
};

/// Debugger side: issues idempotent requests with retry-until-answer.
class XnetDebugger {
public:
    using ResultFn = std::function<void(const XnetResult&)>;

    XnetDebugger(core::Host& host, util::Ipv4Address target, std::uint16_t port,
                 sim::Time retry_interval = sim::milliseconds(500), int max_retries = 40);

    /// One operation may be outstanding at a time (a debugger is a serial
    /// tool); issuing a new one while busy returns false.
    bool peek(std::uint32_t addr, std::uint16_t length, ResultFn done);
    bool poke(std::uint32_t addr, std::span<const std::uint8_t> data, ResultFn done);
    bool halt(ResultFn done);
    bool resume(ResultFn done);

    std::uint64_t retries() const noexcept { return retries_; }

private:
    bool issue(util::ByteBuffer request, ResultFn done);
    void transmit();
    void on_reply(std::span<const std::uint8_t> reply);
    void on_retry_timer();

    core::Host& host_;
    util::Ipv4Address target_;
    std::uint16_t port_;
    sim::Time retry_interval_;
    int max_retries_;
    std::unique_ptr<udp::UdpSocket> socket_;
    sim::Timer retry_timer_;
    util::ByteBuffer pending_request_;
    ResultFn pending_done_;
    std::uint32_t next_tag_ = 1;
    std::uint32_t pending_tag_ = 0;
    int attempts_ = 0;
    std::uint64_t retries_ = 0;
};

}  // namespace catenet::app
