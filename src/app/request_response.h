// Request/response over TCP — the "transaction" workload (name lookups,
// RPC) whose per-exchange cost the paper's §cost-effectiveness worries
// about: a 40-byte header tax on tiny messages. Also used to measure
// connection-setup latency (three-way handshake cost per transaction).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/node.h"
#include "util/stats.h"

namespace catenet::app {

/// Serves fixed-size responses: reads a 4-byte request id + 2-byte
/// response size, answers with the id echoed plus padding.
class RpcServer {
public:
    RpcServer(core::Host& host, std::uint16_t port, const tcp::TcpConfig& config = {});

    std::uint64_t requests_served() const noexcept { return served_; }

private:
    struct Conn {
        std::shared_ptr<tcp::TcpSocket> socket;
        util::ByteBuffer accum;
    };

    void on_bytes(Conn& conn, std::span<const std::uint8_t> data);

    core::Host& host_;
    std::vector<std::shared_ptr<Conn>> conns_;
    std::uint64_t served_ = 0;
};

struct RpcClientConfig {
    std::size_t request_extra_bytes = 0;    ///< payload beyond the 6-byte header
    std::uint16_t response_bytes = 128;
    sim::Time mean_interarrival = sim::milliseconds(500);
    bool connection_per_request = false;    ///< measure handshake tax
    tcp::TcpConfig tcp;
};

class RpcClient {
public:
    RpcClient(core::Host& host, util::Ipv4Address dst, std::uint16_t port,
              RpcClientConfig config = {});

    void start();
    void stop();

    const util::Percentiles& latencies_ms() const noexcept { return latencies_; }
    std::uint64_t requests_sent() const noexcept { return sent_; }
    std::uint64_t responses_received() const noexcept { return received_; }

private:
    void issue_request();
    void schedule_next();
    void on_bytes(std::span<const std::uint8_t> data);

    core::Host& host_;
    util::Ipv4Address dst_;
    std::uint16_t port_;
    RpcClientConfig config_;
    std::shared_ptr<tcp::TcpSocket> socket_;  ///< persistent-mode connection
    std::vector<std::shared_ptr<tcp::TcpSocket>> transient_;  ///< per-request mode
    sim::Timer timer_;
    std::map<std::uint32_t, sim::Time> outstanding_;
    util::ByteBuffer accum_;
    util::Percentiles latencies_;
    std::uint32_t next_id_ = 1;
    std::uint64_t sent_ = 0;
    std::uint64_t received_ = 0;
    bool running_ = false;
};

}  // namespace catenet::app
