// Path discovery built from the architecture's own error machinery: send
// echo requests with increasing TTL; each expiring gateway answers with
// ICMP Time Exceeded (identifying itself), and the destination answers the
// final probe with an Echo Reply. Nothing in the network cooperates
// specially — the diagnostic falls out of goal-3's minimal mechanism,
// which is why the real traceroute could be a user-space hack.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/node.h"

namespace catenet::app {

struct TracerouteHop {
    int ttl = 0;
    /// Responder address; nullopt = probe timed out (silent hop).
    std::optional<util::Ipv4Address> responder;
    sim::Time rtt;
    bool reached_destination = false;
};

struct TracerouteConfig {
    int max_hops = 30;
    sim::Time probe_timeout = sim::seconds(3);
    std::uint16_t icmp_id = 0x7ace;
};

/// Runs one probe per TTL until the destination answers or max_hops is
/// exhausted. Event-driven: on_complete fires with the hop list.
class Traceroute {
public:
    using CompleteFn = std::function<void(const std::vector<TracerouteHop>&)>;

    Traceroute(core::Host& host, util::Ipv4Address dst, TracerouteConfig config = {});
    ~Traceroute();

    void start(CompleteFn on_complete);

    const std::vector<TracerouteHop>& hops() const noexcept { return hops_; }
    bool finished() const noexcept { return finished_; }

private:
    void send_probe();
    void on_probe_answered(util::Ipv4Address responder, bool destination_reached);
    void on_probe_timeout();
    void finish();

    core::Host& host_;
    util::Ipv4Address dst_;
    TracerouteConfig config_;
    CompleteFn on_complete_;
    std::vector<TracerouteHop> hops_;
    sim::Timer timeout_;
    sim::Time probe_sent_at_;
    int current_ttl_ = 0;
    std::uint16_t seq_ = 0;
    bool finished_ = false;
};

}  // namespace catenet::app
