#include "app/bulk.h"

#include <algorithm>

namespace catenet::app {

BulkServer::BulkServer(core::Host& host, std::uint16_t port, const tcp::TcpConfig& config)
    : host_(host) {
    host_.tcp().listen(
        port,
        [this](std::shared_ptr<tcp::TcpSocket> socket) {
            auto conn = std::make_shared<Conn>();
            conn->socket = socket;
            conns_.push_back(conn);
            // The callbacks capture the Conn raw, not by shared_ptr: the
            // socket owns its callbacks, so a strong capture of an object
            // that owns the socket is a reference cycle and neither side
            // would ever free. conns_ keeps the Conn alive for the
            // server's lifetime, the same contract as the `this` capture.
            Conn* c = conn.get();
            socket->on_data = [this, c](std::span<const std::uint8_t> data) {
                for (const auto byte : data) {
                    if (byte != static_cast<std::uint8_t>(c->offset & 0xff)) {
                        ++pattern_errors_;
                    }
                    ++c->offset;
                }
                bytes_ += data.size();
            };
            socket->on_remote_close = [c] {
                // Sender finished: close our half too.
                c->socket->close();
            };
            socket->on_closed = [this] { ++completed_; };
        },
        config);
}

BulkSender::BulkSender(core::Host& host, util::Ipv4Address dst, std::uint16_t port,
                       std::uint64_t total_bytes, const tcp::TcpConfig& config)
    : host_(host), dst_(dst), port_(port), total_bytes_(total_bytes), config_(config) {}

void BulkSender::start() {
    if (started_) return;
    started_ = true;
    start_time_ = host_.simulator().now();
    socket_ = host_.tcp().connect(dst_, port_, config_);
    socket_->on_connected = [this] { pump(); };
    socket_->on_send_space = [this] { pump(); };
    // The receiver closes its half after seeing our FIN; by the time that
    // FIN reaches us, every data byte has been acknowledged. (Waiting for
    // on_closed would add the full TIME-WAIT to the measurement.)
    socket_->on_remote_close = [this] { note_done(); };
    socket_->on_closed = [this] { note_done(); };
    socket_->on_reset = [this] {
        if (!finished_) failed_ = true;
    };
}

void BulkSender::pump() {
    // Keep the socket's buffer full in bounded chunks.
    std::uint8_t chunk[4096];
    while (sent_offset_ < total_bytes_) {
        const std::size_t want =
            std::min<std::uint64_t>(sizeof(chunk), total_bytes_ - sent_offset_);
        for (std::size_t i = 0; i < want; ++i) {
            chunk[i] = static_cast<std::uint8_t>((sent_offset_ + i) & 0xff);
        }
        const std::size_t accepted =
            socket_->send(std::span<const std::uint8_t>(chunk, want));
        sent_offset_ += accepted;
        if (accepted < want) break;  // buffer full; resume on_send_space
    }
    if (sent_offset_ >= total_bytes_) {
        socket_->close();
    }
}

void BulkSender::note_done() {
    if (finished_ || failed_) return;
    if (sent_offset_ >= total_bytes_) {
        finished_ = true;
        finish_time_ = host_.simulator().now();
        if (on_complete) on_complete();
    } else {
        failed_ = true;
    }
}

double BulkSender::throughput_bps() const {
    if (!finished_) return 0.0;
    const auto elapsed = finish_time_ - start_time_;
    if (elapsed.nanos() <= 0) return 0.0;
    return static_cast<double>(total_bytes_) * 8.0 / elapsed.seconds();
}

}  // namespace catenet::app
