#include "app/voice.h"

#include <cmath>

namespace catenet::app {

namespace {

// Frame wire format: seq(4) timestamp_ns(8) padding to frame_bytes.
constexpr std::size_t kVoiceHeader = 12;

util::ByteBuffer encode_voice_frame(std::uint32_t seq, sim::Time now, std::size_t size) {
    util::BufferWriter w(size);
    w.put_u32(seq);
    w.put_u64(static_cast<std::uint64_t>(now.nanos()));
    if (size > kVoiceHeader) w.put_zero(size - kVoiceHeader);
    return w.take();
}

}  // namespace

void VoiceSink::on_frame(std::uint32_t seq, sim::Time sent_at, sim::Time now) {
    (void)seq;
    ++received_;
    const sim::Time latency = now - sent_at;
    latencies_ms_.add(latency.millis());
    if (latency > config_.playout_delay) ++late_;
    if (have_last_) {
        const double gap_ms = (now - last_arrival_).millis();
        jitter_ms_.add(std::abs(gap_ms - config_.frame_interval.millis()));
    }
    have_last_ = true;
    last_arrival_ = now;
}

VoiceReport VoiceSink::report(std::uint64_t frames_sent) const {
    VoiceReport r;
    r.frames_sent = frames_sent;
    r.frames_received = received_;
    r.frames_late = late_;
    r.frames_lost = frames_sent > received_ ? frames_sent - received_ : 0;
    if (frames_sent > 0) {
        r.loss_fraction = static_cast<double>(r.frames_lost) /
                          static_cast<double>(frames_sent);
        r.usable_fraction = static_cast<double>(received_ - late_) /
                            static_cast<double>(frames_sent);
    }
    r.mean_latency_ms = latencies_ms_.percentile(50.0);
    r.p95_latency_ms = latencies_ms_.percentile(95.0);
    r.p99_latency_ms = latencies_ms_.percentile(99.0);
    r.jitter_ms = jitter_ms_.mean();
    return r;
}

// ---------------------------------------------------------------------------
// VoiceOverUdp
// ---------------------------------------------------------------------------

VoiceOverUdp::VoiceOverUdp(core::Host& sender, core::Host& receiver, std::uint16_t port,
                           VoiceConfig config)
    : sender_(sender),
      config_(config),
      dst_(receiver.address()),
      port_(port),
      sink_(config),
      frame_timer_(sender.simulator(), [this] { send_frame(); }) {
    tx_ = sender.udp().bind_ephemeral();
    tx_->set_tos(config.tos);
    rx_ = receiver.udp().bind(port);
    rx_->set_handler([this, &receiver](util::Ipv4Address, std::uint16_t,
                                       std::span<const std::uint8_t> payload) {
        if (payload.size() < kVoiceHeader) return;
        util::BufferReader r(payload);
        const std::uint32_t seq = r.get_u32();
        const sim::Time sent_at(static_cast<std::int64_t>(r.get_u64()));
        sink_.on_frame(seq, sent_at, receiver.simulator().now());
    });
}

void VoiceOverUdp::start(sim::Time duration) {
    stop_at_ = sender_.simulator().now() + duration;
    frame_timer_.start(config_.frame_interval, /*start_immediately=*/true);
}

void VoiceOverUdp::send_frame() {
    if (sender_.simulator().now() >= stop_at_) {
        frame_timer_.stop();
        return;
    }
    const auto frame =
        encode_voice_frame(seq_++, sender_.simulator().now(), config_.frame_bytes);
    tx_->send_to(dst_, port_, frame);
    ++sent_;
}

// ---------------------------------------------------------------------------
// VoiceOverTcp
// ---------------------------------------------------------------------------

VoiceOverTcp::VoiceOverTcp(core::Host& sender, core::Host& receiver, std::uint16_t port,
                           VoiceConfig config, tcp::TcpConfig tcp_config)
    : sender_(sender),
      receiver_(receiver),
      config_(config),
      sink_(config),
      frame_timer_(sender.simulator(), [this] { send_frame(); }) {
    // Interactivity settings: batching delay is poison for voice.
    tcp_config.nagle = false;
    tcp_config.tos = config.tos;
    receiver.tcp().listen(port, [this](const std::shared_ptr<tcp::TcpSocket>& socket) {
        // No socket capture: the TCP stack keeps the accepted socket alive
        // while it can still deliver data, and a strong self-capture in the
        // socket's own callback would be a reference cycle.
        socket->on_data = [this](std::span<const std::uint8_t> data) { on_bytes(data); };
    });
    tx_ = sender.tcp().connect(receiver.address(), port, tcp_config);
}

void VoiceOverTcp::start(sim::Time duration) {
    stop_at_ = sender_.simulator().now() + duration;
    frame_timer_.start(config_.frame_interval, /*start_immediately=*/true);
}

void VoiceOverTcp::send_frame() {
    if (sender_.simulator().now() >= stop_at_) {
        frame_timer_.stop();
        return;
    }
    if (!tx_->connected()) return;  // still handshaking: frame is simply lost
    const auto frame =
        encode_voice_frame(seq_++, sender_.simulator().now(), config_.frame_bytes);
    // The byte stream needs framing: 2-byte length prefix per record.
    util::BufferWriter w(2 + frame.size());
    w.put_u16(static_cast<std::uint16_t>(frame.size()));
    w.put_bytes(frame);
    tx_->send(w.data());
    tx_->push();
    ++sent_;
}

void VoiceOverTcp::on_bytes(std::span<const std::uint8_t> data) {
    rx_accum_.insert(rx_accum_.end(), data.begin(), data.end());
    while (rx_accum_.size() >= 2) {
        util::BufferReader r(rx_accum_);
        const std::uint16_t len = r.get_u16();
        if (rx_accum_.size() < 2u + len) break;
        if (len >= kVoiceHeader) {
            const std::uint32_t seq = r.get_u32();
            const sim::Time sent_at(static_cast<std::int64_t>(r.get_u64()));
            sink_.on_frame(seq, sent_at, receiver_.simulator().now());
        }
        rx_accum_.erase(rx_accum_.begin(), rx_accum_.begin() + 2 + len);
    }
}

}  // namespace catenet::app
