// Remote login — the paper's canonical "low delay, small packets" type of
// service (telnet in 1988). A client types characters at random intervals;
// the server echoes each one; the client records keystroke-to-echo round
// trips. Latency percentiles under competing bulk traffic are the E2
// service-type measurement.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/node.h"
#include "util/stats.h"

namespace catenet::app {

/// TCP echo server: every received byte is written straight back.
class EchoServer {
public:
    EchoServer(core::Host& host, std::uint16_t port, const tcp::TcpConfig& config = {});

    std::uint64_t bytes_echoed() const noexcept { return bytes_; }

private:
    core::Host& host_;
    std::vector<std::shared_ptr<tcp::TcpSocket>> conns_;
    std::uint64_t bytes_ = 0;
};

struct InteractiveConfig {
    sim::Time mean_interkey = sim::milliseconds(300);  ///< exponential
    tcp::TcpConfig tcp;
};

/// Simulated typist measuring per-keystroke echo RTT.
class InteractiveClient {
public:
    InteractiveClient(core::Host& host, util::Ipv4Address dst, std::uint16_t port,
                      InteractiveConfig config = {});

    void start();
    void stop();

    const util::Percentiles& echo_rtts_ms() const noexcept { return rtts_; }
    std::uint64_t keystrokes_sent() const noexcept { return sent_; }
    std::uint64_t echoes_received() const noexcept { return received_; }

private:
    void type_next();
    void schedule_next();

    core::Host& host_;
    util::Ipv4Address dst_;
    std::uint16_t port_;
    InteractiveConfig config_;
    std::shared_ptr<tcp::TcpSocket> socket_;
    sim::Timer key_timer_;
    std::vector<sim::Time> pending_sends_;  ///< send time per outstanding echo
    util::Percentiles rtts_;
    std::uint64_t sent_ = 0;
    std::uint64_t received_ = 0;
    bool running_ = false;
};

}  // namespace catenet::app
