#include "app/interactive.h"

namespace catenet::app {

EchoServer::EchoServer(core::Host& host, std::uint16_t port, const tcp::TcpConfig& config)
    : host_(host) {
    // An echo server is the canonical TCP_NODELAY application: batching an
    // echo behind an unacknowledged one adds a full RTT for nothing.
    tcp::TcpConfig echo_config = config;
    echo_config.nagle = false;
    host_.tcp().listen(
        port,
        [this](std::shared_ptr<tcp::TcpSocket> socket) {
            conns_.push_back(socket);
            auto* raw = socket.get();
            socket->on_data = [this, raw](std::span<const std::uint8_t> data) {
                bytes_ += data.size();
                raw->send(data);
                raw->push();  // echo immediately; interactivity beats batching
            };
            socket->on_remote_close = [raw] { raw->close(); };
        },
        echo_config);
}

InteractiveClient::InteractiveClient(core::Host& host, util::Ipv4Address dst,
                                     std::uint16_t port, InteractiveConfig config)
    : host_(host),
      dst_(dst),
      port_(port),
      config_(config),
      key_timer_(host.simulator(), [this] { type_next(); }) {}

void InteractiveClient::start() {
    running_ = true;
    socket_ = host_.tcp().connect(dst_, port_, config_.tcp);
    socket_->on_connected = [this] { schedule_next(); };
    socket_->on_data = [this](std::span<const std::uint8_t> data) {
        const sim::Time now = host_.simulator().now();
        for (std::size_t i = 0; i < data.size(); ++i) {
            if (pending_sends_.empty()) break;
            const sim::Time sent_at = pending_sends_.front();
            pending_sends_.erase(pending_sends_.begin());
            rtts_.add((now - sent_at).millis());
            ++received_;
        }
    };
}

void InteractiveClient::stop() {
    running_ = false;
    key_timer_.cancel();
    if (socket_) socket_->close();
}

void InteractiveClient::schedule_next() {
    if (!running_) return;
    key_timer_.schedule(
        sim::from_seconds(host_.rng().exponential(config_.mean_interkey.seconds())));
}

void InteractiveClient::type_next() {
    if (!running_ || !socket_ || !socket_->connected()) return;
    const std::uint8_t key = 'k';
    pending_sends_.push_back(host_.simulator().now());
    socket_->send(std::span<const std::uint8_t>(&key, 1));
    socket_->push();
    ++sent_;
    schedule_next();
}

}  // namespace catenet::app
