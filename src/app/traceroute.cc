#include "app/traceroute.h"

#include "ip/protocols.h"

namespace catenet::app {

Traceroute::Traceroute(core::Host& host, util::Ipv4Address dst, TracerouteConfig config)
    : host_(host),
      dst_(dst),
      config_(config),
      timeout_(host.simulator(), [this] { on_probe_timeout(); }) {}

Traceroute::~Traceroute() = default;

void Traceroute::start(CompleteFn on_complete) {
    on_complete_ = std::move(on_complete);

    // Claim the host's ICMP delivery hooks. (One active traceroute per
    // host; fine for a diagnostic.)
    host_.ip().register_protocol(
        ip::kProtoIcmp,
        [this](const ip::Ipv4Header& h, std::span<const std::uint8_t> payload,
               std::size_t) {
            auto msg = ip::decode_icmp(payload);
            if (!msg || finished_) return;
            if (msg->type == ip::IcmpType::EchoReply && msg->echo_id() == config_.icmp_id &&
                msg->echo_seq() == seq_) {
                on_probe_answered(h.src, /*destination_reached=*/true);
            }
        });
    host_.ip().set_icmp_error_handler(
        [this](const ip::IcmpMessage& msg, util::Ipv4Address from) {
            if (finished_ || msg.type != ip::IcmpType::TimeExceeded) return;
            // The error quotes our datagram: IP header (20 B) + the first
            // 8 ICMP bytes, where the id/seq of the expired probe live.
            if (msg.body.size() < 28) return;
            const std::uint16_t id =
                static_cast<std::uint16_t>((msg.body[24] << 8) | msg.body[25]);
            const std::uint16_t seq =
                static_cast<std::uint16_t>((msg.body[26] << 8) | msg.body[27]);
            if (id == config_.icmp_id && seq == seq_) {
                on_probe_answered(from, /*destination_reached=*/false);
            }
        });

    current_ttl_ = 1;
    send_probe();
}

void Traceroute::send_probe() {
    ++seq_;
    probe_sent_at_ = host_.simulator().now();
    host_.ip().ping(dst_, config_.icmp_id, seq_, {}, static_cast<std::uint8_t>(current_ttl_));
    timeout_.schedule(config_.probe_timeout);
}

void Traceroute::on_probe_answered(util::Ipv4Address responder, bool destination_reached) {
    timeout_.cancel();
    TracerouteHop hop;
    hop.ttl = current_ttl_;
    hop.responder = responder;
    hop.rtt = host_.simulator().now() - probe_sent_at_;
    hop.reached_destination = destination_reached;
    hops_.push_back(hop);
    if (destination_reached || current_ttl_ >= config_.max_hops) {
        finish();
        return;
    }
    ++current_ttl_;
    send_probe();
}

void Traceroute::on_probe_timeout() {
    TracerouteHop hop;
    hop.ttl = current_ttl_;
    hop.rtt = config_.probe_timeout;
    hops_.push_back(hop);
    if (current_ttl_ >= config_.max_hops) {
        finish();
        return;
    }
    ++current_ttl_;
    send_probe();
}

void Traceroute::finish() {
    finished_ = true;
    if (on_complete_) on_complete_(hops_);
}

}  // namespace catenet::app
