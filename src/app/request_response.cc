#include "app/request_response.h"

namespace catenet::app {

namespace {
// Request wire: id(4) response_size(2) [extra payload].
// Response wire: id(4) then padding to response_size (>= 4).
constexpr std::size_t kRequestHeader = 6;
}  // namespace

RpcServer::RpcServer(core::Host& host, std::uint16_t port, const tcp::TcpConfig& config)
    : host_(host) {
    // Transaction servers disable Nagle: a response must not wait behind
    // the ack of the previous one.
    tcp::TcpConfig rpc_config = config;
    rpc_config.nagle = false;
    host_.tcp().listen(
        port,
        [this](std::shared_ptr<tcp::TcpSocket> socket) {
            auto conn = std::make_shared<Conn>();
            conn->socket = socket;
            conns_.push_back(conn);
            // Raw Conn capture: the socket owns these callbacks, so a
            // strong capture of the Conn (which owns the socket) would be
            // a reference cycle. conns_ keeps the Conn alive for the
            // server's lifetime, the same contract as the `this` capture.
            Conn* c = conn.get();
            socket->on_data = [this, c](std::span<const std::uint8_t> data) {
                on_bytes(*c, data);
            };
            socket->on_remote_close = [c] { c->socket->close(); };
        },
        rpc_config);
}

void RpcServer::on_bytes(Conn& conn, std::span<const std::uint8_t> data) {
    conn.accum.insert(conn.accum.end(), data.begin(), data.end());
    while (conn.accum.size() >= kRequestHeader) {
        util::BufferReader r(conn.accum);
        const std::uint32_t id = r.get_u32();
        const std::uint16_t response_size = r.get_u16();
        // Requests are exactly header-sized in this protocol; any extra
        // request payload rides in front of the next header and is skipped
        // by the client's sizing, so consume only the header here.
        conn.accum.erase(conn.accum.begin(), conn.accum.begin() + kRequestHeader);

        const std::size_t size = std::max<std::size_t>(response_size, 4);
        util::BufferWriter w(size);
        w.put_u32(id);
        w.put_zero(size - 4);
        conn.socket->send(w.data());
        conn.socket->push();
        ++served_;
    }
}

RpcClient::RpcClient(core::Host& host, util::Ipv4Address dst, std::uint16_t port,
                     RpcClientConfig config)
    : host_(host),
      dst_(dst),
      port_(port),
      config_(config),
      timer_(host.simulator(), [this] { issue_request(); }) {}

void RpcClient::start() {
    running_ = true;
    if (!config_.connection_per_request) {
        socket_ = host_.tcp().connect(dst_, port_, config_.tcp);
        socket_->on_data = [this](std::span<const std::uint8_t> data) { on_bytes(data); };
        socket_->on_connected = [this] { schedule_next(); };
    } else {
        schedule_next();
    }
}

void RpcClient::stop() {
    running_ = false;
    timer_.cancel();
    if (socket_) socket_->close();
}

void RpcClient::schedule_next() {
    if (!running_) return;
    timer_.schedule(
        sim::from_seconds(host_.rng().exponential(config_.mean_interarrival.seconds())));
}

void RpcClient::issue_request() {
    if (!running_) return;
    const std::uint32_t id = next_id_++;

    util::BufferWriter w(kRequestHeader + config_.request_extra_bytes);
    w.put_u32(id);
    w.put_u16(config_.response_bytes);
    w.put_zero(config_.request_extra_bytes);

    outstanding_[id] = host_.simulator().now();
    ++sent_;

    if (config_.connection_per_request) {
        // Fresh connection per transaction: pays the handshake every time.
        auto socket = host_.tcp().connect(dst_, port_, config_.tcp);
        transient_.push_back(socket);
        auto* raw = socket.get();
        auto request = w.take();
        socket->on_connected = [raw, request] {
            raw->send(request);
            raw->push();
        };
        socket->on_data = [this, raw](std::span<const std::uint8_t> data) {
            const auto before = received_;
            on_bytes(data);
            if (received_ > before) raw->close();
        };
        socket->on_closed = [this, raw] {
            std::erase_if(transient_, [raw](const auto& s) { return s.get() == raw; });
        };
    } else if (socket_ && socket_->connected()) {
        socket_->send(w.data());
        socket_->push();
    }
    schedule_next();
}

void RpcClient::on_bytes(std::span<const std::uint8_t> data) {
    accum_.insert(accum_.end(), data.begin(), data.end());
    // Responses are fixed-size (config_.response_bytes, min 4).
    const std::size_t size = std::max<std::size_t>(config_.response_bytes, 4);
    while (accum_.size() >= size) {
        util::BufferReader r(accum_);
        const std::uint32_t id = r.get_u32();
        accum_.erase(accum_.begin(), accum_.begin() + static_cast<std::ptrdiff_t>(size));
        auto it = outstanding_.find(id);
        if (it != outstanding_.end()) {
            latencies_.add((host_.simulator().now() - it->second).millis());
            outstanding_.erase(it);
            ++received_;
        }
    }
}

}  // namespace catenet::app
