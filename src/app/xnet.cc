#include "app/xnet.h"

namespace catenet::app {

namespace {

// Request wire: tag(4) op(1) addr(4) length(2) [data...]
// Reply wire:   tag(4) status(1) [data...]
enum Op : std::uint8_t { kPeek = 1, kPoke = 2, kHalt = 3, kResume = 4 };
constexpr std::uint8_t kOk = 0;
constexpr std::uint8_t kBadAddress = 1;

}  // namespace

// ---------------------------------------------------------------------------
// XnetTarget
// ---------------------------------------------------------------------------

XnetTarget::XnetTarget(core::Host& host, std::uint16_t port, std::size_t memory_size)
    : host_(host), memory_(memory_size, 0) {
    socket_ = host_.udp().bind(port);
    socket_->set_handler([this](util::Ipv4Address from, std::uint16_t from_port,
                                std::span<const std::uint8_t> request) {
        on_request(from, from_port, request);
    });
}

void XnetTarget::on_request(util::Ipv4Address from, std::uint16_t from_port,
                            std::span<const std::uint8_t> request) {
    try {
        util::BufferReader r(request);
        const std::uint32_t tag = r.get_u32();
        const std::uint8_t op = r.get_u8();
        const std::uint32_t addr = r.get_u32();
        const std::uint16_t length = r.get_u16();

        util::BufferWriter reply(5 + length);
        reply.put_u32(tag);

        switch (op) {
            case kPeek: {
                if (std::size_t{addr} + length > memory_.size()) {
                    reply.put_u8(kBadAddress);
                    break;
                }
                reply.put_u8(kOk);
                reply.put_bytes(std::span<const std::uint8_t>(&memory_[addr], length));
                break;
            }
            case kPoke: {
                const auto data = r.remaining();
                if (std::size_t{addr} + data.size() > memory_.size()) {
                    reply.put_u8(kBadAddress);
                    break;
                }
                // Idempotent by construction: re-writing the same bytes to
                // the same addresses is harmless, so duplicated requests
                // (the retry strategy's price) cost nothing.
                std::copy(data.begin(), data.end(),
                          memory_.begin() + static_cast<std::ptrdiff_t>(addr));
                reply.put_u8(kOk);
                break;
            }
            case kHalt:
                halted_ = true;
                reply.put_u8(kOk);
                break;
            case kResume:
                halted_ = false;
                reply.put_u8(kOk);
                break;
            default:
                reply.put_u8(kBadAddress);
                break;
        }
        ++served_;
        socket_->send_to(from, from_port, reply.data());
    } catch (const util::DecodeError&) {
        // Malformed request: silence (the client will retry).
    }
}

// ---------------------------------------------------------------------------
// XnetDebugger
// ---------------------------------------------------------------------------

XnetDebugger::XnetDebugger(core::Host& host, util::Ipv4Address target, std::uint16_t port,
                           sim::Time retry_interval, int max_retries)
    : host_(host),
      target_(target),
      port_(port),
      retry_interval_(retry_interval),
      max_retries_(max_retries),
      retry_timer_(host.simulator(), [this] { on_retry_timer(); }) {
    socket_ = host_.udp().bind_ephemeral();
    socket_->set_handler([this](util::Ipv4Address, std::uint16_t,
                                std::span<const std::uint8_t> reply) {
        on_reply(reply);
    });
}

bool XnetDebugger::issue(util::ByteBuffer request, ResultFn done) {
    if (pending_done_) return false;  // one at a time
    pending_request_ = std::move(request);
    pending_done_ = std::move(done);
    attempts_ = 0;
    transmit();
    return true;
}

bool XnetDebugger::peek(std::uint32_t addr, std::uint16_t length, ResultFn done) {
    pending_tag_ = next_tag_++;
    util::BufferWriter w(11);
    w.put_u32(pending_tag_);
    w.put_u8(1);
    w.put_u32(addr);
    w.put_u16(length);
    return issue(w.take(), std::move(done));
}

bool XnetDebugger::poke(std::uint32_t addr, std::span<const std::uint8_t> data,
                        ResultFn done) {
    pending_tag_ = next_tag_++;
    util::BufferWriter w(11 + data.size());
    w.put_u32(pending_tag_);
    w.put_u8(2);
    w.put_u32(addr);
    w.put_u16(static_cast<std::uint16_t>(data.size()));
    w.put_bytes(data);
    return issue(w.take(), std::move(done));
}

bool XnetDebugger::halt(ResultFn done) {
    pending_tag_ = next_tag_++;
    util::BufferWriter w(11);
    w.put_u32(pending_tag_);
    w.put_u8(3);
    w.put_u32(0);
    w.put_u16(0);
    return issue(w.take(), std::move(done));
}

bool XnetDebugger::resume(ResultFn done) {
    pending_tag_ = next_tag_++;
    util::BufferWriter w(11);
    w.put_u32(pending_tag_);
    w.put_u8(4);
    w.put_u32(0);
    w.put_u16(0);
    return issue(w.take(), std::move(done));
}

void XnetDebugger::transmit() {
    ++attempts_;
    socket_->send_to(target_, port_, pending_request_);
    retry_timer_.schedule(retry_interval_);
}

void XnetDebugger::on_retry_timer() {
    if (!pending_done_) return;
    if (attempts_ > max_retries_) {
        auto done = std::move(pending_done_);
        pending_done_ = nullptr;
        XnetResult failed;
        done(failed);
        return;
    }
    ++retries_;
    transmit();
}

void XnetDebugger::on_reply(std::span<const std::uint8_t> reply) {
    if (!pending_done_) return;
    try {
        util::BufferReader r(reply);
        const std::uint32_t tag = r.get_u32();
        if (tag != pending_tag_) return;  // stale duplicate: ignore
        const std::uint8_t status = r.get_u8();
        retry_timer_.cancel();
        auto done = std::move(pending_done_);
        pending_done_ = nullptr;
        XnetResult result;
        result.ok = status == 0;
        const auto rest = r.remaining();
        result.data.assign(rest.begin(), rest.end());
        done(result);
    } catch (const util::DecodeError&) {
    }
}

}  // namespace catenet::app
