// Bulk file transfer over TCP — the paper's canonical "reliable,
// throughput-oriented" type of service (FTP in 1988). The sender keeps the
// socket's send buffer full; the receiver counts bytes and verifies the
// pattern. Used by the survivability (E1), service-type (E2), network-
// variety (E3) and host-burden (E6) experiments.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/node.h"

namespace catenet::app {

/// Accepts connections and consumes/validates a deterministic byte
/// pattern, byte i of the stream being (i & 0xff).
class BulkServer {
public:
    BulkServer(core::Host& host, std::uint16_t port, const tcp::TcpConfig& config = {});

    std::uint64_t total_bytes_received() const noexcept { return bytes_; }
    std::uint64_t connections_completed() const noexcept { return completed_; }
    std::uint64_t pattern_errors() const noexcept { return pattern_errors_; }

private:
    struct Conn {
        std::shared_ptr<tcp::TcpSocket> socket;
        std::uint64_t offset = 0;
    };

    core::Host& host_;
    std::vector<std::shared_ptr<Conn>> conns_;
    std::uint64_t bytes_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t pattern_errors_ = 0;
};

/// Sends `total_bytes` of the pattern, then closes. Completion time and
/// delivery are observable; on_complete fires when the peer acknowledges
/// everything (socket fully closed).
class BulkSender {
public:
    BulkSender(core::Host& host, util::Ipv4Address dst, std::uint16_t port,
               std::uint64_t total_bytes, const tcp::TcpConfig& config = {});

    void start();

    bool finished() const noexcept { return finished_; }
    bool failed() const noexcept { return failed_; }
    sim::Time start_time() const noexcept { return start_time_; }
    sim::Time finish_time() const noexcept { return finish_time_; }
    double throughput_bps() const;
    std::uint64_t bytes_queued() const noexcept { return sent_offset_; }
    const tcp::TcpSocketStats& socket_stats() const { return socket_->stats(); }
    tcp::TcpSocket& socket() noexcept { return *socket_; }
    /// The owning handle, e.g. for Internetwork::watch_tcp.
    const std::shared_ptr<tcp::TcpSocket>& shared_socket() const noexcept { return socket_; }

    std::function<void()> on_complete;

private:
    void pump();
    void note_done();

    core::Host& host_;
    util::Ipv4Address dst_;
    std::uint16_t port_;
    std::uint64_t total_bytes_;
    tcp::TcpConfig config_;
    std::shared_ptr<tcp::TcpSocket> socket_;
    std::uint64_t sent_offset_ = 0;
    sim::Time start_time_;
    sim::Time finish_time_;
    bool started_ = false;
    bool finished_ = false;
    bool failed_ = false;
};

}  // namespace catenet::app
