#include "app/scenario.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "core/flow.h"
#include "core/topology_gen.h"
#include "link/presets.h"
#include "link/queue.h"

namespace catenet::app {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
    std::istringstream is(line);
    std::vector<std::string> tokens;
    std::string token;
    while (is >> token) {
        if (token[0] == '#') break;  // comment to end of line
        tokens.push_back(token);
    }
    return tokens;
}

// "1M" / "64K" / "1024" -> bytes.
std::uint64_t parse_size(const std::string& s, int line) {
    if (s.empty()) throw ScenarioError(line, "empty size");
    std::uint64_t multiplier = 1;
    std::string digits = s;
    switch (s.back()) {
        case 'K': multiplier = 1024; digits.pop_back(); break;
        case 'M': multiplier = 1024 * 1024; digits.pop_back(); break;
        case 'G': multiplier = 1024ull * 1024 * 1024; digits.pop_back(); break;
        default: break;
    }
    try {
        return std::stoull(digits) * multiplier;
    } catch (const std::exception&) {
        throw ScenarioError(line, "bad size '" + s + "'");
    }
}

// "30s" / "500ms" -> Time.
sim::Time parse_duration(const std::string& s, int line) {
    try {
        if (s.size() > 2 && s.substr(s.size() - 2) == "ms") {
            return sim::milliseconds(std::stoll(s.substr(0, s.size() - 2)));
        }
        if (!s.empty() && s.back() == 's') {
            return sim::from_seconds(std::stod(s.substr(0, s.size() - 1)));
        }
    } catch (const std::exception&) {
    }
    throw ScenarioError(line, "bad duration '" + s + "' (use e.g. 30s or 500ms)");
}

link::LinkParams technology(const std::string& name, int line) {
    if (name == "ethernet") return link::presets::ethernet_hop();
    if (name == "leased56k") return link::presets::leased_line();
    if (name == "satellite") return link::presets::satellite();
    if (name == "radio") return link::presets::packet_radio();
    if (name == "serial1200") return link::presets::slow_serial();
    if (name == "x25") return link::presets::x25_hop();
    throw ScenarioError(line, "unknown link technology '" + name + "'");
}

void apply_link_option(link::LinkParams& params, const std::string& option, int line) {
    const auto eq = option.find('=');
    if (eq == std::string::npos) {
        throw ScenarioError(line, "bad link option '" + option + "'");
    }
    const std::string key = option.substr(0, eq);
    const std::string value = option.substr(eq + 1);
    try {
        if (key == "loss") {
            params.drop_probability = std::stod(value);
        } else if (key == "rate") {
            params.bits_per_second = std::stoull(value);
        } else if (key == "delay") {
            params.propagation_delay = sim::milliseconds(std::stoll(value));
        } else if (key == "mtu") {
            params.mtu = std::stoul(value);
        } else {
            throw ScenarioError(line, "unknown link option '" + key + "'");
        }
    } catch (const ScenarioError&) {
        throw;
    } catch (const std::exception&) {
        throw ScenarioError(line, "bad value in '" + option + "'");
    }
}

struct PendingFailure {
    std::string node;
    sim::Time at;
    sim::Time duration;
};

}  // namespace

void ScenarioReport::print(std::ostream& os) const {
    os << "simulated " << simulated_seconds << " s, " << events << " events, "
       << total_link_bytes << " bytes on the wire\n";
    for (const auto& transfer : transfers) {
        os << "transfer " << transfer.src << " -> " << transfer.dst << ": "
           << (transfer.completed ? "completed" : "INCOMPLETE") << " " << transfer.bytes
           << " B in " << transfer.seconds << " s (" << transfer.goodput_bps / 1000.0
           << " kb/s, " << transfer.retransmits << " rexmits)\n";
    }
    for (const auto& voice : voices) {
        os << "voice " << voice.src << " -> " << voice.dst << ": "
           << voice.report.frames_received << "/" << voice.report.frames_sent
           << " frames, " << voice.report.usable_fraction * 100 << "% usable, p99 "
           << voice.report.p99_latency_ms << " ms\n";
    }
    for (const auto& session : interactives) {
        os << "interactive " << session.src << " -> " << session.dst << ": "
           << session.echoes << "/" << session.keystrokes << " echoes, rtt p50 "
           << session.rtt_p50_ms << " ms p99 " << session.rtt_p99_ms << " ms\n";
    }
}

ScenarioReport run_scenario(const std::string& text, std::uint64_t seed) {
    auto net = std::make_unique<core::Internetwork>(seed);
    std::map<std::string, core::Host*> hosts;
    std::map<std::string, core::Gateway*> gateways;
    std::map<std::string, std::size_t> lans;
    auto find_node = [&](const std::string& name, int line) -> core::Node& {
        if (auto it = hosts.find(name); it != hosts.end()) return *it->second;
        if (auto it = gateways.find(name); it != gateways.end()) return *it->second;
        throw ScenarioError(line, "unknown node '" + name + "'");
    };
    auto find_host = [&](const std::string& name, int line) -> core::Host& {
        if (auto it = hosts.find(name); it != hosts.end()) return *it->second;
        throw ScenarioError(line, "'" + name + "' is not a host");
    };

    bool routing_configured = false;
    std::vector<PendingFailure> failures;
    std::map<std::pair<std::string, std::string>, std::size_t> link_index;

    // Deferred workloads (started just before `run`).
    struct TransferSpec {
        std::string src, dst;
        std::uint64_t bytes;
        std::unique_ptr<app::BulkServer> server;
        std::unique_ptr<app::BulkSender> sender;
    };
    struct VoiceSpec {
        std::string src, dst;
        sim::Time duration;
        std::unique_ptr<app::VoiceOverUdp> call;
    };
    struct InteractiveSpec {
        std::string src, dst;
        sim::Time duration;
        std::unique_ptr<app::InteractiveClient> client;
    };
    std::vector<TransferSpec> transfers;
    std::vector<VoiceSpec> voices;
    std::vector<InteractiveSpec> interactives;
    std::vector<std::unique_ptr<app::EchoServer>> echo_servers;
    std::uint16_t next_port = 2000;

    ScenarioReport report;
    std::istringstream stream(text);
    std::string raw_line;
    int line = 0;
    bool ran = false;

    while (std::getline(stream, raw_line)) {
        ++line;
        const auto tokens = tokenize(raw_line);
        if (tokens.empty()) continue;
        const std::string& cmd = tokens[0];

        if (cmd == "generate" && tokens.size() >= 5 && tokens[1] == "two_tier") {
            core::TwoTierParams params;
            params.seed = seed;
            try {
                params.gateways = static_cast<std::uint32_t>(std::stoul(tokens[2]));
                params.lans = static_cast<std::uint32_t>(std::stoul(tokens[3]));
                params.hosts_per_lan = static_cast<std::uint32_t>(std::stoul(tokens[4]));
            } catch (const std::exception&) {
                throw ScenarioError(line, "generate two_tier needs numeric "
                                          "<gateways> <lans> <hosts_per_lan>");
            }
            for (std::size_t i = 5; i < tokens.size(); ++i) {
                if (tokens[i] == "compact") {
                    params.compact_hosts = true;
                } else if (tokens[i] == "full") {
                    params.compact_hosts = false;
                } else if (tokens[i].rfind("seed=", 0) == 0) {
                    try {
                        params.seed = std::stoull(tokens[i].substr(5));
                    } catch (const std::exception&) {
                        throw ScenarioError(line, "bad value in '" + tokens[i] + "'");
                    }
                } else {
                    throw ScenarioError(line, "unknown generate option '" + tokens[i] +
                                                  "' (compact, full, seed=N)");
                }
            }
            core::TwoTierTopology topo;
            try {
                topo = core::generate_two_tier(*net, params);
            } catch (const std::exception& e) {
                throw ScenarioError(line, e.what());
            }
            // The generated population joins the name tables: gateways as
            // gw<i>, materialized hosts as h<lan>_<host> — later transfer /
            // voice / fail directives address them like hand-declared nodes.
            for (std::size_t i = 0; i < topo.gateways.size(); ++i) {
                gateways["gw" + std::to_string(i)] = topo.gateways[i];
            }
            for (std::size_t l = 0, h = 0; l < params.lans && !params.compact_hosts;
                 ++l) {
                for (std::uint32_t k = 0; k < params.hosts_per_lan; ++k, ++h) {
                    hosts["h" + std::to_string(l) + "_" + std::to_string(k)] =
                        topo.hosts[h];
                }
            }
            routing_configured = params.install_routes;
        } else if (cmd == "host" && tokens.size() == 2) {
            hosts[tokens[1]] = &net->add_host(tokens[1]);
        } else if (cmd == "gateway" && tokens.size() == 2) {
            gateways[tokens[1]] = &net->add_gateway(tokens[1]);
        } else if (cmd == "lan" && tokens.size() == 2) {
            lans[tokens[1]] = net->add_lan(link::presets::ethernet_lan(), tokens[1]);
        } else if (cmd == "attach" && tokens.size() == 3) {
            auto lan_it = lans.find(tokens[2]);
            if (lan_it == lans.end()) throw ScenarioError(line, "unknown lan");
            net->attach_to_lan(find_node(tokens[1], line), lan_it->second);
        } else if (cmd == "link" && tokens.size() >= 4) {
            auto params = technology(tokens[3], line);
            for (std::size_t i = 4; i < tokens.size(); ++i) {
                apply_link_option(params, tokens[i], line);
            }
            const auto index = net->connect(find_node(tokens[1], line),
                                            find_node(tokens[2], line), params);
            link_index[{tokens[1], tokens[2]}] = index;
        } else if (cmd == "routing" && tokens.size() == 2) {
            routing_configured = true;
            if (tokens[1] == "static") {
                net->use_static_routes();
            } else if (tokens[1] == "dv") {
                routing::DvConfig dv;
                dv.period = sim::seconds(2);
                dv.route_timeout = sim::seconds(7);
                net->enable_dynamic_routing(dv);
                net->run_for(sim::seconds(15));  // convergence warm-up
            } else {
                throw ScenarioError(line, "routing must be 'static' or 'dv'");
            }
        } else if (cmd == "transfer" && tokens.size() == 4) {
            TransferSpec spec;
            spec.src = tokens[1];
            spec.dst = tokens[2];
            spec.bytes = parse_size(tokens[3], line);
            find_host(spec.src, line);
            find_host(spec.dst, line);
            transfers.push_back(std::move(spec));
        } else if (cmd == "voice" && tokens.size() == 4) {
            VoiceSpec spec;
            spec.src = tokens[1];
            spec.dst = tokens[2];
            spec.duration = parse_duration(tokens[3], line);
            find_host(spec.src, line);
            find_host(spec.dst, line);
            voices.push_back(std::move(spec));
        } else if (cmd == "echo" && tokens.size() == 2) {
            echo_servers.push_back(
                std::make_unique<app::EchoServer>(find_host(tokens[1], line), 23));
        } else if (cmd == "interactive" && tokens.size() == 4) {
            InteractiveSpec spec;
            spec.src = tokens[1];
            spec.dst = tokens[2];
            spec.duration = parse_duration(tokens[3], line);
            find_host(spec.src, line);
            find_host(spec.dst, line);
            interactives.push_back(std::move(spec));
        } else if (cmd == "queue" && tokens.size() == 4) {
            auto it = link_index.find({tokens[1], tokens[2]});
            if (it == link_index.end()) {
                throw ScenarioError(line, "no link " + tokens[1] + " " + tokens[2] +
                                              " (queue uses the link's node order)");
            }
            auto& link = net->link(it->second);
            if (tokens[3] == "fair") {
                link.set_queue_a(std::make_unique<link::FairQueue>(
                    12, 1500, [](const link::Packet& p) -> std::uint64_t {
                        auto key = core::classify_packet(p.bytes);
                        return key ? key->hash() : 0;
                    }));
            } else if (tokens[3] == "priority") {
                link.set_queue_a(std::make_unique<link::PriorityQueue>(
                    2, 24, [](const link::Packet& p) -> std::uint64_t {
                        auto key = core::classify_packet(p.bytes);
                        return (key && (key->tos & 0xf0) != 0) ? 0 : 1;
                    }));
            } else {
                throw ScenarioError(line, "queue must be 'fair' or 'priority'");
            }
        } else if (cmd == "fail" && tokens.size() == 6 && tokens[2] == "at" &&
                   tokens[4] == "for") {
            find_node(tokens[1], line);
            failures.push_back(PendingFailure{tokens[1], parse_duration(tokens[3], line),
                                              parse_duration(tokens[5], line)});
        } else if (cmd == "run" && tokens.size() == 2) {
            if (!routing_configured) net->use_static_routes();
            const auto duration = parse_duration(tokens[1], line);
            const auto t0 = net->sim().now();

            // Launch workloads.
            for (auto& spec : transfers) {
                spec.server = std::make_unique<app::BulkServer>(
                    find_host(spec.dst, line), next_port);
                spec.sender = std::make_unique<app::BulkSender>(
                    find_host(spec.src, line), find_host(spec.dst, line).address(),
                    next_port, spec.bytes);
                spec.sender->start();
                ++next_port;
            }
            for (auto& spec : voices) {
                spec.call = std::make_unique<app::VoiceOverUdp>(
                    find_host(spec.src, line), find_host(spec.dst, line),
                    next_port++);
                spec.call->start(spec.duration);
            }
            for (auto& spec : interactives) {
                app::InteractiveConfig config;
                config.tcp.nagle = false;
                spec.client = std::make_unique<app::InteractiveClient>(
                    find_host(spec.src, line), find_host(spec.dst, line).address(), 23,
                    config);
                spec.client->start();
            }
            // Schedule failures.
            for (const auto& failure : failures) {
                core::Node* node = &find_node(failure.node, line);
                net->sim().schedule_at(t0 + failure.at,
                                       [node] { node->set_down(true); });
                net->sim().schedule_at(t0 + failure.at + failure.duration,
                                       [node] { node->set_down(false); });
            }

            net->run_for(duration);
            for (auto& spec : interactives) spec.client->stop();
            net->run_for(sim::seconds(5));  // settle

            // Collect the report.
            report.simulated_seconds = net->sim().now().seconds();
            report.events = net->sim().events_processed();
            report.total_link_bytes = net->total_link_bytes();
            for (auto& spec : transfers) {
                ScenarioReport::Transfer t;
                t.src = spec.src;
                t.dst = spec.dst;
                t.bytes = spec.bytes;
                t.completed = spec.sender->finished();
                t.seconds = t.completed
                                ? (spec.sender->finish_time() - spec.sender->start_time())
                                      .seconds()
                                : -1;
                t.goodput_bps = spec.sender->throughput_bps();
                t.retransmits = spec.sender->socket_stats().retransmitted_segments;
                report.transfers.push_back(t);
            }
            for (auto& spec : voices) {
                report.voices.push_back(
                    ScenarioReport::Voice{spec.src, spec.dst, spec.call->report()});
            }
            for (auto& spec : interactives) {
                ScenarioReport::Interactive i;
                i.src = spec.src;
                i.dst = spec.dst;
                i.keystrokes = spec.client->keystrokes_sent();
                i.echoes = spec.client->echoes_received();
                i.rtt_p50_ms = spec.client->echo_rtts_ms().median();
                i.rtt_p99_ms = spec.client->echo_rtts_ms().percentile(99);
                report.interactives.push_back(i);
            }
            ran = true;
        } else {
            throw ScenarioError(line, "unrecognized directive '" + raw_line + "'");
        }
    }
    if (!ran) throw ScenarioError(line, "scenario never reached a 'run' directive");
    return report;
}

}  // namespace catenet::app
