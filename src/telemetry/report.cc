#include "telemetry/report.h"

#include <cinttypes>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "telemetry/flight_recorder.h"

namespace catenet::telemetry {

namespace {

// Fixed-format double for JSON: enough digits to round-trip the values we
// report, same spelling on every platform-independent code path.
std::string fmt_double(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

void append_counters_json(std::string& out, const CounterBlock& block,
                          bool nonzero_only) {
    out += '{';
    bool first = true;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
        if (nonzero_only && block.slots[i] == 0) continue;
        if (!first) out += ',';
        first = false;
        out += '"';
        out += counter_name(static_cast<Counter>(i));
        out += "\":";
        out += std::to_string(block.slots[i]);
    }
    out += '}';
}

void append_direction_json(std::string& out, std::uint64_t pkts,
                           std::uint64_t bytes, double util) {
    out += "{\"pkts\":" + std::to_string(pkts);
    out += ",\"bytes\":" + std::to_string(bytes);
    out += ",\"util\":";
    out += util < 0.0 ? "null" : fmt_double(util);
    out += '}';
}

}  // namespace

MetricsReport MetricsReport::collect(const Registry& registry, sim::Time now,
                                     const FlightRecorder* recorder) {
    MetricsReport r;
    r.now_ns = now.nanos();
    r.totals = registry.totals();
    for (std::size_t i = 0; i < registry.nodes().size(); ++i) {
        const NodeEntry& n = registry.nodes()[i];
        r.nodes.push_back(NodeCounters{n.name, n.shard, registry.node_totals(i)});
    }
    const double elapsed_ns = static_cast<double>(r.now_ns);
    for (const LinkEntry& l : registry.links()) {
        LinkRow row;
        row.name = l.name;
        row.boundary = l.boundary;
        if (l.if_a != nullptr) {
            row.pkts_a_to_b = l.if_a->packets_sent;
            row.bytes_a_to_b = l.if_a->bytes_sent;
            if (elapsed_ns > 0 && l.if_a->busy_ns > 0)
                row.util_a_to_b = static_cast<double>(l.if_a->busy_ns) / elapsed_ns;
        }
        if (l.if_b != nullptr) {
            row.pkts_b_to_a = l.if_b->packets_sent;
            row.bytes_b_to_a = l.if_b->bytes_sent;
            if (elapsed_ns > 0 && l.if_b->busy_ns > 0)
                row.util_b_to_a = static_cast<double>(l.if_b->busy_ns) / elapsed_ns;
        }
        for (const auto& queue_of : {l.queue_a, l.queue_b}) {
            const link::QueueStats* q = queue_of ? queue_of() : nullptr;
            if (q != nullptr) {
                row.queue_drops += q->dropped;
                row.queue_bytes_dropped += q->bytes_dropped;
            }
        }
        if (l.chan_a_to_b != nullptr) {
            row.channel_lost += l.chan_a_to_b->packets_lost;
            row.channel_corrupted += l.chan_a_to_b->packets_corrupted;
        }
        if (l.chan_b_to_a != nullptr) {
            row.channel_lost += l.chan_b_to_a->packets_lost;
            row.channel_corrupted += l.chan_b_to_a->packets_corrupted;
        }
        r.links.push_back(std::move(row));
    }
    for (std::size_t i = 0; i < registry.series_count(); ++i) {
        const GaugeSeries& s = registry.series(i);
        GaugeRow row;
        row.name = s.name();
        row.samples = s.total();
        if (row.samples > 0) {
            row.min = s.stats().min();
            row.max = s.stats().max();
            row.mean = s.stats().mean();
            row.last = s.last().value;
        }
        r.gauges.push_back(std::move(row));
    }
    if (recorder != nullptr) {
        r.recorder_attached = true;
        r.recorder_records = recorder->total_records();
        r.recorder_overwritten = recorder->total_overwritten();
    }
    return r;
}

std::string MetricsReport::to_json() const {
    std::string out;
    out += "{\"t_ns\":" + std::to_string(now_ns);
    out += ",\"totals\":";
    append_counters_json(out, totals, /*nonzero_only=*/false);
    out += ",\"nodes\":[";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (i > 0) out += ',';
        out += "{\"name\":\"" + json_escape(nodes[i].name) + "\"";
        out += ",\"shard\":" + std::to_string(nodes[i].shard);
        out += ",\"counters\":";
        append_counters_json(out, nodes[i].block, /*nonzero_only=*/true);
        out += '}';
    }
    out += "],\"links\":[";
    for (std::size_t i = 0; i < links.size(); ++i) {
        const LinkRow& l = links[i];
        if (i > 0) out += ',';
        out += "{\"name\":\"" + json_escape(l.name) + "\"";
        out += ",\"boundary\":";
        out += l.boundary ? "true" : "false";
        out += ",\"a_to_b\":";
        append_direction_json(out, l.pkts_a_to_b, l.bytes_a_to_b, l.util_a_to_b);
        out += ",\"b_to_a\":";
        append_direction_json(out, l.pkts_b_to_a, l.bytes_b_to_a, l.util_b_to_a);
        out += ",\"queue_drops\":" + std::to_string(l.queue_drops);
        out += ",\"queue_bytes_dropped\":" + std::to_string(l.queue_bytes_dropped);
        out += ",\"channel_lost\":" + std::to_string(l.channel_lost);
        out += ",\"channel_corrupted\":" + std::to_string(l.channel_corrupted);
        out += '}';
    }
    out += "],\"gauges\":[";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        const GaugeRow& g = gauges[i];
        if (i > 0) out += ',';
        out += "{\"name\":\"" + json_escape(g.name) + "\"";
        out += ",\"samples\":" + std::to_string(g.samples);
        if (g.samples == 0) {
            // An empty series made no observation: null, not 0.0.
            out += ",\"min\":null,\"max\":null,\"mean\":null,\"last\":null";
        } else {
            out += ",\"min\":" + fmt_double(g.min);
            out += ",\"max\":" + fmt_double(g.max);
            out += ",\"mean\":" + fmt_double(g.mean);
            out += ",\"last\":" + fmt_double(g.last);
        }
        out += '}';
    }
    out += "],\"recorder\":";
    if (recorder_attached) {
        out += "{\"records\":" + std::to_string(recorder_records);
        out += ",\"overwritten\":" + std::to_string(recorder_overwritten) + "}";
    } else {
        out += "null";
    }
    out += "}";
    return out;
}

std::string MetricsReport::to_table() const {
    std::ostringstream os;
    os << "== catenet metrics @ t=" << std::fixed << std::setprecision(6)
       << static_cast<double>(now_ns) / 1e9 << "s ==\n";
    os << "-- counters (totals, nonzero) --\n";
    for (std::size_t i = 0; i < kCounterCount; ++i) {
        if (totals.slots[i] == 0) continue;
        os << "  " << std::left << std::setw(28)
           << counter_name(static_cast<Counter>(i)) << std::right << std::setw(12)
           << totals.slots[i] << "\n";
    }
    if (!links.empty()) {
        os << "-- links --\n";
        for (const LinkRow& l : links) {
            os << "  " << std::left << std::setw(16) << l.name << std::right;
            os << " a>b " << std::setw(8) << l.pkts_a_to_b << " pkts";
            if (l.util_a_to_b >= 0.0)
                os << " (" << std::setprecision(1) << l.util_a_to_b * 100.0 << "% util)";
            os << ", b>a " << std::setw(8) << l.pkts_b_to_a << " pkts";
            if (l.util_b_to_a >= 0.0)
                os << " (" << std::setprecision(1) << l.util_b_to_a * 100.0 << "% util)";
            if (l.queue_drops > 0) os << ", qdrop " << l.queue_drops;
            if (l.channel_lost > 0) os << ", lost " << l.channel_lost;
            if (l.channel_corrupted > 0) os << ", corrupt " << l.channel_corrupted;
            os << "\n";
        }
    }
    if (!gauges.empty()) {
        os << "-- gauges --\n";
        for (const GaugeRow& g : gauges) {
            os << "  " << std::left << std::setw(28) << g.name << std::right;
            if (g.samples == 0) {
                os << " (no samples)\n";
                continue;
            }
            os << " n=" << g.samples << std::setprecision(3) << " min=" << g.min
               << " mean=" << g.mean << " max=" << g.max << " last=" << g.last
               << "\n";
        }
    }
    if (recorder_attached) {
        os << "-- flight recorder --\n  " << recorder_records << " records ("
           << recorder_overwritten << " overwritten)\n";
    }
    return os.str();
}

}  // namespace catenet::telemetry
