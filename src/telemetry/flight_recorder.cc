#include "telemetry/flight_recorder.h"

#include "ip/ipv4_header.h"
#include "ip/trace.h"

namespace catenet::telemetry {

std::size_t FlightRecorder::add_lane(std::string name, std::size_t capacity) {
    lanes_.push_back(std::make_unique<Lane>(std::move(name), capacity));
    return lanes_.size() - 1;
}

std::string FlightRecorder::render(const Lane& lane, const PacketRecord& r) {
    ip::Ipv4Header h;
    h.src = util::Ipv4Address{r.src};
    h.dst = util::Ipv4Address{r.dst};
    h.protocol = r.protocol;
    h.ttl = r.ttl;
    h.tos = r.tos;
    h.fragment_offset = r.frag_off;
    h.more_fragments = r.more_fragments != 0;
    return ip::format_trace_line(static_cast<double>(r.t_ns) / 1e9, lane.name,
                                 to_cstr(static_cast<PacketEvent>(r.event)), h,
                                 r.wire_bytes);
}

std::string FlightRecorder::decode_lane(std::size_t i) const {
    const Lane& lane = *lanes_.at(i);
    std::string out;
    for (std::size_t k = 0; k < lane.ring.held(); ++k) {
        out += render(lane, lane.ring.at(k));
    }
    return out;
}

std::string FlightRecorder::merged() const {
    // Per-lane records are already time-sorted (each node's clock is
    // monotone); k-way index merge, ties to the lower lane id then
    // per-lane order — byte-compatible with TraceCollector::merged().
    std::vector<std::size_t> pos(lanes_.size(), 0);
    std::size_t remaining = 0;
    for (const auto& l : lanes_) remaining += l->ring.held();
    std::string out;
    while (remaining > 0) {
        std::size_t best = lanes_.size();
        std::int64_t best_t = 0;
        for (std::size_t i = 0; i < lanes_.size(); ++i) {
            if (pos[i] >= lanes_[i]->ring.held()) continue;
            const std::int64_t t = lanes_[i]->ring.at(pos[i]).t_ns;
            if (best == lanes_.size() || t < best_t) {
                best = i;
                best_t = t;
            }
        }
        out += render(*lanes_[best], lanes_[best]->ring.at(pos[best]));
        ++pos[best];
        --remaining;
    }
    return out;
}

std::uint64_t FlightRecorder::total_records() const noexcept {
    std::uint64_t n = 0;
    for (const auto& l : lanes_) n += l->ring.total();
    return n;
}

std::uint64_t FlightRecorder::total_overwritten() const noexcept {
    std::uint64_t n = 0;
    for (const auto& l : lanes_) n += l->ring.overwritten();
    return n;
}

}  // namespace catenet::telemetry
