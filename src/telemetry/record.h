// The binary flight recorder's hot half: a fixed 32-byte packet-event
// record and a bounded per-lane ring to store it in. Writing a record is
// one index computation and one trivially-copyable struct store — no
// formatting, no allocation, no synchronization (each lane has exactly one
// writer: the shard thread that owns the node). The cold half — decoding
// rings back into text byte-identical to ip::format_trace_line — lives in
// flight_recorder.h, which this header deliberately does not include: the
// IP stack's per-packet path depends only on what is defined here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/drop_reason.h"

namespace catenet::telemetry {

/// Datagram event kinds, mirroring the text tracer's vocabulary exactly.
enum class PacketEvent : std::uint8_t { Tx = 0, Rx, Deliver, Fwd, Drop };

/// The tracer spelling of an event — the recorder and the live tracer
/// share it, so their outputs can be compared byte for byte.
constexpr const char* to_cstr(PacketEvent e) noexcept {
    switch (e) {
        case PacketEvent::Tx: return "tx";
        case PacketEvent::Rx: return "rx";
        case PacketEvent::Deliver: return "deliver";
        case PacketEvent::Fwd: return "fwd";
        case PacketEvent::Drop: return "drop";
    }
    return "?";
}

/// One datagram event, fixed width. Addresses are host-order; frag_off is
/// in 8-octet units (the wire encoding). 24 bytes of payload packed to 32.
struct PacketRecord {
    std::int64_t t_ns = 0;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint32_t wire_bytes = 0;
    std::uint16_t frag_off = 0;
    std::uint8_t event = 0;     ///< PacketEvent
    std::uint8_t protocol = 0;
    std::uint8_t ttl = 0;
    std::uint8_t tos = 0;
    std::uint8_t more_fragments = 0;
    std::uint8_t reason = 0;    ///< DropReason (None unless event == Drop)
};
static_assert(sizeof(PacketRecord) == 32);
static_assert(std::is_trivially_copyable_v<PacketRecord>);

/// A bounded ring of records owned by one node. Capacity is rounded up to
/// a power of two so the steady-state append indexes with a mask; when the
/// ring laps, the oldest records are overwritten (a flight recorder keeps
/// the most recent history, and reports how much it forgot).
class RecorderLane {
public:
    explicit RecorderLane(std::size_t capacity) {
        std::size_t cap = 1;
        while (cap < capacity) cap <<= 1;
        ring_.resize(cap);
    }

    void append(const PacketRecord& r) noexcept {
#ifndef CATENET_NO_TELEMETRY
        ring_[total_ & (ring_.size() - 1)] = r;
        ++total_;
#else
        (void)r;
#endif
    }

    std::size_t capacity() const noexcept { return ring_.size(); }
    /// Records ever appended (monotone; exceeds capacity once lapped).
    std::uint64_t total() const noexcept { return total_; }
    /// Records still held: the most recent min(total, capacity).
    std::size_t held() const noexcept {
        return total_ < ring_.size() ? static_cast<std::size_t>(total_) : ring_.size();
    }
    /// Records lost to ring wrap (0 until the lane laps).
    std::uint64_t overwritten() const noexcept { return total_ - held(); }

    /// i-th held record in time order (0 = oldest still held).
    const PacketRecord& at(std::size_t i) const noexcept {
        return ring_[(total_ - held() + i) & (ring_.size() - 1)];
    }

    void clear() noexcept { total_ = 0; }

private:
    std::vector<PacketRecord> ring_;
    std::uint64_t total_ = 0;
};

}  // namespace catenet::telemetry
