// Gauge time-series: periodic snapshots of instantaneous state (queue
// depth, cwnd, flight size, srtt, link utilization) that counters cannot
// express. Each series is a fixed-capacity ring of (t_ns, value) samples
// plus a RunningStats over everything it ever saw; the sampler is an
// ordinary simulator event, so sampling is deterministic, replayable, and
// per-shard (a sampler runs on one shard's engine and touches only that
// shard's nodes — the same single-writer rule as the counter blocks).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/timer.h"
#include "util/stats.h"

namespace catenet::telemetry {

/// One gauge's history: bounded ring of samples (most recent kept) and
/// streaming moments over the full run.
class GaugeSeries {
public:
    struct Sample {
        std::int64_t t_ns;
        double value;
    };

    GaugeSeries(std::string name, std::size_t capacity) : name_(std::move(name)) {
        std::size_t cap = 1;
        while (cap < capacity) cap <<= 1;
        ring_.resize(cap);
    }

    void record(std::int64_t t_ns, double value) noexcept {
        ring_[total_ & (ring_.size() - 1)] = Sample{t_ns, value};
        ++total_;
        stats_.add(value);
    }

    const std::string& name() const noexcept { return name_; }
    std::uint64_t total() const noexcept { return total_; }
    std::size_t held() const noexcept {
        return total_ < ring_.size() ? static_cast<std::size_t>(total_) : ring_.size();
    }
    const Sample& at(std::size_t i) const noexcept {
        return ring_[(total_ - held() + i) & (ring_.size() - 1)];
    }
    /// Most recent sample; meaningless when total() == 0.
    const Sample& last() const noexcept { return at(held() - 1); }

    /// Moments over every sample ever recorded. NOTE: RunningStats
    /// reports min()/max()/mean() as 0.0 when empty — an empty series must
    /// be reported explicitly (null), never as an observation of zero;
    /// MetricsReport does exactly that.
    const util::RunningStats& stats() const noexcept { return stats_; }

private:
    std::string name_;
    std::vector<Sample> ring_;
    std::uint64_t total_ = 0;
    util::RunningStats stats_;
};

/// A probe reads one instantaneous value; returning nullopt skips the
/// sample (e.g. the watched socket is gone). Probes may hold mutable
/// closure state — the utilization probe keeps the previous busy-time
/// reading to differentiate a cumulative counter.
using GaugeProbe = std::function<std::optional<double>()>;

/// Samples a set of probes into their series at a fixed period on one
/// simulator. Steady-state cost: one timer re-arm (allocation-free) plus
/// one ring store per probe.
class GaugeSampler {
public:
    explicit GaugeSampler(sim::Simulator& sim);

    /// Registers a probe feeding `series`. The series must outlive the
    /// sampler's last tick; both usually live in the Registry.
    void add(GaugeSeries* series, GaugeProbe probe);

    void start(sim::Time period);
    void stop() { timer_.stop(); }
    bool running() const noexcept { return timer_.running(); }
    sim::Time period() const noexcept { return period_; }

private:
    void tick();

    sim::Simulator& sim_;
    sim::PeriodicTimer timer_;
    sim::Time period_;
    struct Entry {
        GaugeSeries* series;
        GaugeProbe probe;
    };
    std::vector<Entry> entries_;
};

/// Wraps a cumulative busy-nanoseconds reading into a utilization-in-
/// [0,1] probe: each tick reports (Δbusy / Δt) since the previous tick.
GaugeProbe make_utilization_probe(sim::Simulator& sim,
                                  std::function<std::uint64_t()> busy_ns);

}  // namespace catenet::telemetry
