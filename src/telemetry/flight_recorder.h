// The flight recorder's cold half: lane management and post-run decoding.
// Lanes are created in deterministic order (lane id = merge tie-break
// rank, same rule as ip::TraceCollector); each lane is attached to one
// IpStack via IpStack::set_recorder and written only by that node's shard
// thread. After the run, decode() / merged() re-render the binary records
// through ip::format_trace_line — the single formatter the live tracer
// uses — so a recorded run's transcript is byte-identical to a live text
// trace of the same nodes, and the existing trace tests double as decoder
// tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/record.h"

namespace catenet::telemetry {

class FlightRecorder {
public:
    /// Default per-lane capacity: 64k records = 2 MiB per node.
    static constexpr std::size_t kDefaultLaneCapacity = 1 << 16;

    /// Creates a lane; returns its id (merge tie-break rank — create lanes
    /// in deterministic order).
    std::size_t add_lane(std::string name,
                         std::size_t capacity = kDefaultLaneCapacity);

    std::size_t lane_count() const noexcept { return lanes_.size(); }
    RecorderLane& lane(std::size_t i) { return lanes_.at(i)->ring; }
    const RecorderLane& lane(std::size_t i) const { return lanes_.at(i)->ring; }
    const std::string& lane_name(std::size_t i) const { return lanes_.at(i)->name; }

    /// One lane's held records rendered as trace lines, oldest first.
    std::string decode_lane(std::size_t i) const;

    /// All lanes merged into one transcript ordered by (timestamp, lane
    /// id, per-lane order) — the same deterministic rule as
    /// ip::TraceCollector::merged().
    std::string merged() const;

    std::uint64_t total_records() const noexcept;
    /// Records lost to ring wrap across all lanes (reported, never silent).
    std::uint64_t total_overwritten() const noexcept;

private:
    struct Lane {
        std::string name;
        RecorderLane ring;
        Lane(std::string n, std::size_t cap) : name(std::move(n)), ring(cap) {}
    };

    static std::string render(const Lane& lane, const PacketRecord& r);

    std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace catenet::telemetry
