// MetricsReport: a point-in-time snapshot of the registry rendered two
// ways — deterministic JSON (machine diffing, bench artifacts) and a
// human table (examples print it at exit). Collection copies everything
// out of the live structures, so a report outlives the run that produced
// it. JSON field order is fixed and doubles are printed with a fixed
// format, so two runs of the same seed produce byte-identical files.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "telemetry/counters.h"
#include "telemetry/registry.h"

namespace catenet::telemetry {

class FlightRecorder;

struct MetricsReport {
    struct NodeCounters {
        std::string name;
        std::uint32_t shard = 0;
        CounterBlock block;
    };
    struct LinkRow {
        std::string name;
        bool boundary = false;
        std::uint64_t pkts_a_to_b = 0, bytes_a_to_b = 0;
        std::uint64_t pkts_b_to_a = 0, bytes_b_to_a = 0;
        std::uint64_t queue_drops = 0, queue_bytes_dropped = 0;
        std::uint64_t channel_lost = 0, channel_corrupted = 0;
        /// Fraction of the run each direction's transmitter was busy;
        /// negative when unknown (boundary ports don't track busy time).
        double util_a_to_b = -1.0, util_b_to_a = -1.0;
    };
    struct GaugeRow {
        std::string name;
        std::uint64_t samples = 0;  ///< 0 ⇒ min/max/mean/last are meaningless
        double min = 0.0, max = 0.0, mean = 0.0, last = 0.0;
    };

    std::int64_t now_ns = 0;
    CounterBlock totals;
    std::vector<NodeCounters> nodes;
    std::vector<LinkRow> links;
    std::vector<GaugeRow> gauges;
    bool recorder_attached = false;
    std::uint64_t recorder_records = 0;
    std::uint64_t recorder_overwritten = 0;

    static MetricsReport collect(const Registry& registry, sim::Time now,
                                 const FlightRecorder* recorder = nullptr);

    /// Deterministic JSON. Counters appear in Counter slot order; per-node
    /// objects list only nonzero slots; an empty gauge series reports its
    /// statistics as null, never as zeros (a series that saw nothing made
    /// no observation — see util::RunningStats' empty-accumulator caveat).
    std::string to_json() const;

    /// Human-readable summary table.
    std::string to_table() const;
};

}  // namespace catenet::telemetry
