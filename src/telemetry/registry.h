// The metrics registry: the run-wide directory of every counter block,
// link statistics source and gauge series, keyed by name — a MIB in
// miniature. Registration happens at topology-build time (the
// Internetwork registers each node and link as it creates them), so by
// the time traffic flows the registry is read-only and the hot path never
// sees it: nodes increment their own blocks, links bump their own stats,
// and the registry only walks the pointers at report time, after the
// shards have quiesced.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "link/netif.h"
#include "link/queue.h"
#include "telemetry/counters.h"
#include "telemetry/gauges.h"

namespace catenet::telemetry {

/// One node's registration: its counter blocks, one per protocol stack
/// that owns counters (IP always; TCP/UDP on hosts). Blocks are merged
/// element-wise to get the node view — each stack writes disjoint slots.
struct NodeEntry {
    std::string name;
    std::uint32_t shard = 0;
    std::vector<const CounterBlock*> blocks;
};

/// One link's registration: const views of the statistics both ports and
/// both channel directions already keep. Queues are reached through an
/// accessor rather than a raw pointer because experiments may swap a
/// port's queue discipline after the link is built (set_queue_a), which
/// would dangle a cached pointer. Queue accessors are empty for boundary
/// links (their queueing lives inside the SPSC channel).
struct LinkEntry {
    std::string name;
    bool boundary = false;
    const link::NetIfStats* if_a = nullptr;
    const link::NetIfStats* if_b = nullptr;
    std::function<const link::QueueStats*()> queue_a;
    std::function<const link::QueueStats*()> queue_b;
    const link::ChannelStats* chan_a_to_b = nullptr;
    const link::ChannelStats* chan_b_to_a = nullptr;
};

class Registry {
public:
    /// Default gauge history: 4096 samples per series.
    static constexpr std::size_t kDefaultSeriesCapacity = std::size_t{1} << 12;

    std::size_t register_node(std::string name, std::uint32_t shard,
                              std::vector<const CounterBlock*> blocks) {
        nodes_.push_back(NodeEntry{std::move(name), shard, std::move(blocks)});
        return nodes_.size() - 1;
    }

    std::size_t register_link(LinkEntry entry) {
        links_.push_back(std::move(entry));
        return links_.size() - 1;
    }

    /// Creates (and owns) a gauge series; the pointer stays valid for the
    /// registry's lifetime.
    GaugeSeries& add_series(std::string name,
                            std::size_t capacity = kDefaultSeriesCapacity) {
        series_.push_back(std::make_unique<GaugeSeries>(std::move(name), capacity));
        return *series_.back();
    }

    const std::vector<NodeEntry>& nodes() const noexcept { return nodes_; }
    const std::vector<LinkEntry>& links() const noexcept { return links_; }
    std::size_t series_count() const noexcept { return series_.size(); }
    const GaugeSeries& series(std::size_t i) const { return *series_.at(i); }

    /// One node's counters, all its blocks folded together.
    CounterBlock node_totals(std::size_t i) const {
        CounterBlock out;
        for (const CounterBlock* b : nodes_.at(i).blocks) out.merge(*b);
        return out;
    }

    /// The whole run's counters: every block of every node, merged. Order
    /// cannot matter (element-wise addition), which is what makes the
    /// sharded and sequential runs comparable slot for slot.
    CounterBlock totals() const {
        CounterBlock out;
        for (const NodeEntry& n : nodes_)
            for (const CounterBlock* b : n.blocks) out.merge(*b);
        return out;
    }

private:
    std::vector<NodeEntry> nodes_;
    std::vector<LinkEntry> links_;
    std::vector<std::unique_ptr<GaugeSeries>> series_;
};

}  // namespace catenet::telemetry
