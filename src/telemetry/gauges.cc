#include "telemetry/gauges.h"

namespace catenet::telemetry {

GaugeSampler::GaugeSampler(sim::Simulator& sim)
    : sim_(sim), timer_(sim, [this] { tick(); }) {}

void GaugeSampler::add(GaugeSeries* series, GaugeProbe probe) {
    entries_.push_back(Entry{series, std::move(probe)});
}

void GaugeSampler::start(sim::Time period) {
    period_ = period;
    timer_.start(period);
}

void GaugeSampler::tick() {
    const std::int64_t t = sim_.now().nanos();
    for (auto& e : entries_) {
        if (auto v = e.probe()) e.series->record(t, *v);
    }
}

GaugeProbe make_utilization_probe(sim::Simulator& sim,
                                  std::function<std::uint64_t()> busy_ns) {
    struct State {
        std::int64_t last_t = 0;
        std::uint64_t last_busy = 0;
    };
    return [&sim, busy = std::move(busy_ns), st = State{}]() mutable
               -> std::optional<double> {
        const std::int64_t t = sim.now().nanos();
        const std::uint64_t b = busy();
        const std::int64_t dt = t - st.last_t;
        const std::uint64_t db = b - st.last_busy;
        st.last_t = t;
        st.last_busy = b;
        if (dt <= 0) return std::nullopt;
        double u = static_cast<double>(db) / static_cast<double>(dt);
        // A transmission that straddles the sampling edge can push the
        // busy delta past the wall-clock delta; clamp — utilization is a
        // fraction of the interval, not a debt ledger.
        return u > 1.0 ? 1.0 : u;
    };
}

}  // namespace catenet::telemetry
