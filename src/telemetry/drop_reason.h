// The single vocabulary for "why was this datagram discarded". The IP
// stack's drop counters, the flight recorder's drop records, and the
// MIB-style counter names all derive from this one enum, so a reason can
// never be spelled two ways in two subsystems (the ad-hoc string literals
// this replaces had exactly that failure mode).
//
// Header-only and dependency-free: the IP layer includes it on its hot
// path without creating a link-level dependency on the telemetry library.
#pragma once

#include <cstdint>

namespace catenet::telemetry {

enum class DropReason : std::uint8_t {
    None = 0,  ///< not a drop (tx/rx/deliver/fwd records)
    Checksum,
    Malformed,
    NoRoute,
    TtlExpired,
    IfaceDown,
    NotForUs,
    ReassemblyTimeout,
    kCount,
};

inline constexpr std::size_t kDropReasonCount =
    static_cast<std::size_t>(DropReason::kCount);

/// Stable wire/name spelling, shared by counter names and decoded traces.
constexpr const char* to_string(DropReason r) noexcept {
    switch (r) {
        case DropReason::None: return "none";
        case DropReason::Checksum: return "checksum";
        case DropReason::Malformed: return "malformed";
        case DropReason::NoRoute: return "no_route";
        case DropReason::TtlExpired: return "ttl_expired";
        case DropReason::IfaceDown: return "iface_down";
        case DropReason::NotForUs: return "not_for_us";
        case DropReason::ReassemblyTimeout: return "reassembly_timeout";
        case DropReason::kCount: break;
    }
    return "?";
}

}  // namespace catenet::telemetry
