// Fixed-slot counter registry, the per-node half of the telemetry design
// (goals 4 and 7: distributed management and accountability — the two the
// paper concedes the architecture served worst, for want of exactly this
// instrumentation).
//
// Every node owns one CounterBlock: a flat array indexed by the Counter
// enum. An increment is a single unsynchronized store into memory the
// owning shard thread alone writes — the same single-writer discipline as
// util::RunningStats — so the hot path pays one add, no atomics, no
// allocation, no branches. Blocks merge by element-wise addition after the
// shards join; names are resolved only at report time.
//
// The block is the *only* storage for per-layer accounting: the legacy
// stats structs (ip::IpStats, the TCP stack totals' IP half, ...) that
// mirror counter slots are synthesized from it on demand, so an event is
// counted once, not once per view. Counters therefore stay live under
// -DCATENET_NO_TELEMETRY, which compiles out only the additive
// observation machinery (flight-recorder appends and the note() bodies);
// that is the delta the A/B overhead gate (`verify-telemetry`) bounds.
#pragma once

#include <array>
#include <cstdint>

#include "telemetry/drop_reason.h"

namespace catenet::telemetry {

/// Every hot-path counter in the system, all layers, one namespace.
/// Append only — slot order is the registry's wire order and the JSON
/// report's emission order.
enum class Counter : std::uint16_t {
    // --- internet layer ---------------------------------------------------
    IpTx,             ///< datagrams originated locally
    IpRx,             ///< datagrams arrived from a network
    IpFwd,            ///< datagrams forwarded toward the next hop
    IpDeliver,        ///< datagrams handed to a local protocol
    IpDropChecksum,
    IpDropMalformed,
    IpDropNoRoute,
    IpDropTtlExpired,
    IpDropIfaceDown,
    IpDropNotForUs,
    IpDropReassemblyTimeout,
    IpFragsCreated,
    IpIcmpErrorsSent,
    IpSourceQuenchSent,
    IpRouteCacheHit,  ///< destination cache served the lookup
    IpRouteCacheMiss, ///< full longest-prefix match was required
    // --- transport: TCP ---------------------------------------------------
    TcpSegsIn,
    TcpSegsOut,
    TcpRetransSegs,
    TcpRtos,
    TcpDupAcks,
    TcpFastRetransmits,
    TcpZeroWindowEvents,  ///< sender stalls on a closed peer window
    TcpPredAcks,          ///< header-prediction fast-path pure ACKs
    TcpPredData,          ///< header-prediction fast-path data segments
    TcpDropChecksum,
    TcpDropNoConnection,
    TcpResetsSent,
    TcpConnsOpened,
    TcpConnsAccepted,
    // --- transport: UDP ---------------------------------------------------
    UdpTx,
    UdpRx,
    UdpDropChecksum,
    UdpDropNoSocket,
    // --- segmentation offload (appended: slot order is wire order) --------
    // Diagnostics for the GSO/GRO pipeline (DESIGN.md §12). Like the event
    // count, the run/train shape is an engine artifact, not a semantic:
    // twin comparisons that cross engine modes (burst vs per-packet,
    // sequential vs sharded) mask these four slots.
    TcpGsoBuilds,  ///< mega-segment descriptors emitted by the send path
    TcpGsoSegs,    ///< wire segments produced by late splits at the link
    TcpGroRuns,    ///< receive runs (>= 2 segments) coalesced by the fast lane
    TcpGroSegs,    ///< segments consumed through the run fast lane
    kCount,
};

/// True for the offload-shape diagnostics that engine-mode twins mask.
constexpr bool offload_diagnostic(Counter c) noexcept {
    return c == Counter::TcpGsoBuilds || c == Counter::TcpGsoSegs ||
           c == Counter::TcpGroRuns || c == Counter::TcpGroSegs;
}

inline constexpr std::size_t kCounterCount = static_cast<std::size_t>(Counter::kCount);

/// MIB-style dotted name per slot. Drop counters end in the shared
/// DropReason spelling (asserted by test) so traces and counters can never
/// disagree about what a reason is called.
constexpr const char* counter_name(Counter c) noexcept {
    switch (c) {
        case Counter::IpTx: return "ip.tx";
        case Counter::IpRx: return "ip.rx";
        case Counter::IpFwd: return "ip.fwd";
        case Counter::IpDeliver: return "ip.deliver";
        case Counter::IpDropChecksum: return "ip.drop.checksum";
        case Counter::IpDropMalformed: return "ip.drop.malformed";
        case Counter::IpDropNoRoute: return "ip.drop.no_route";
        case Counter::IpDropTtlExpired: return "ip.drop.ttl_expired";
        case Counter::IpDropIfaceDown: return "ip.drop.iface_down";
        case Counter::IpDropNotForUs: return "ip.drop.not_for_us";
        case Counter::IpDropReassemblyTimeout: return "ip.drop.reassembly_timeout";
        case Counter::IpFragsCreated: return "ip.frags_created";
        case Counter::IpIcmpErrorsSent: return "ip.icmp_errors_sent";
        case Counter::IpSourceQuenchSent: return "ip.source_quench_sent";
        case Counter::IpRouteCacheHit: return "ip.route_cache.hit";
        case Counter::IpRouteCacheMiss: return "ip.route_cache.miss";
        case Counter::TcpSegsIn: return "tcp.segs_in";
        case Counter::TcpSegsOut: return "tcp.segs_out";
        case Counter::TcpRetransSegs: return "tcp.retrans_segs";
        case Counter::TcpRtos: return "tcp.rtos";
        case Counter::TcpDupAcks: return "tcp.dup_acks";
        case Counter::TcpFastRetransmits: return "tcp.fast_retransmits";
        case Counter::TcpZeroWindowEvents: return "tcp.zero_window_events";
        case Counter::TcpPredAcks: return "tcp.pred.acks";
        case Counter::TcpPredData: return "tcp.pred.data";
        case Counter::TcpDropChecksum: return "tcp.drop.checksum";
        case Counter::TcpDropNoConnection: return "tcp.drop.no_connection";
        case Counter::TcpResetsSent: return "tcp.resets_sent";
        case Counter::TcpConnsOpened: return "tcp.conns_opened";
        case Counter::TcpConnsAccepted: return "tcp.conns_accepted";
        case Counter::UdpTx: return "udp.tx";
        case Counter::UdpRx: return "udp.rx";
        case Counter::UdpDropChecksum: return "udp.drop.checksum";
        case Counter::UdpDropNoSocket: return "udp.drop.no_socket";
        case Counter::TcpGsoBuilds: return "tcp.gso_builds";
        case Counter::TcpGsoSegs: return "tcp.gso_segs";
        case Counter::TcpGroRuns: return "tcp.gro_runs";
        case Counter::TcpGroSegs: return "tcp.gro_segs";
        case Counter::kCount: break;
    }
    return "?";
}

/// The IP-layer drop counter a reason maps to. Compile-time total: adding
/// a DropReason without a counter slot fails to build the switch.
constexpr Counter drop_counter(DropReason r) noexcept {
    switch (r) {
        case DropReason::Checksum: return Counter::IpDropChecksum;
        case DropReason::Malformed: return Counter::IpDropMalformed;
        case DropReason::NoRoute: return Counter::IpDropNoRoute;
        case DropReason::TtlExpired: return Counter::IpDropTtlExpired;
        case DropReason::IfaceDown: return Counter::IpDropIfaceDown;
        case DropReason::NotForUs: return Counter::IpDropNotForUs;
        case DropReason::ReassemblyTimeout: return Counter::IpDropReassemblyTimeout;
        case DropReason::None:
        case DropReason::kCount: break;
    }
    return Counter::kCount;
}

/// One node's counters: a flat slab of slots. Single writer (the shard
/// thread that owns the node); readers wait for quiescence, exactly like
/// RunningStats and the TraceCollector lanes.
struct CounterBlock {
    std::array<std::uint64_t, kCounterCount> slots{};

    void inc(Counter c) noexcept { ++slots[static_cast<std::size_t>(c)]; }
    void add(Counter c, std::uint64_t n) noexcept {
        slots[static_cast<std::size_t>(c)] += n;
    }

    std::uint64_t get(Counter c) const noexcept {
        return slots[static_cast<std::size_t>(c)];
    }

    /// Element-wise fold, the shard-merge operation. Commutative and
    /// associative, so merge order across shards cannot matter.
    void merge(const CounterBlock& other) noexcept {
        for (std::size_t i = 0; i < kCounterCount; ++i) slots[i] += other.slots[i];
    }

    bool operator==(const CounterBlock&) const = default;
};

}  // namespace catenet::telemetry
