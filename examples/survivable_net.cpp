// Survivability demo — the paper's top-priority goal, staged live.
//
// A five-gateway internet carries a long file transfer. Halfway through we
// destroy the gateway carrying the traffic. Distance-vector routing finds
// the detour, TCP retransmits over it, and the transfer completes — the
// two endpoints never learn that a router died ("fate-sharing": the only
// state that matters is in the hosts).
//
// For contrast, the same drama plays out on an X.25-style virtual-circuit
// network, where the call dies with the switch.
//
// Build & run:   ./build/examples/survivable_net
#include <cstdio>

#include "app/bulk.h"
#include "core/internetwork.h"
#include "link/presets.h"
#include "vc/network.h"

using namespace catenet;

namespace {

void datagram_story() {
    std::printf("=== datagram internet (this architecture) ===\n");
    core::Internetwork net(2025);
    core::Host& src = net.add_host("src");
    core::Host& dst = net.add_host("dst");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");   // primary path
    core::Gateway& g3 = net.add_gateway("g3");   // detour
    core::Gateway& g4 = net.add_gateway("g4");

    auto fast = link::presets::ethernet_hop();
    net.connect(src, g1, fast);
    net.connect(g1, g2, fast);
    net.connect(g2, g4, fast);
    net.connect(g1, g3, fast);    // longer way around
    net.connect(g3, g4, fast);
    net.connect(g4, dst, fast);

    routing::DvConfig dv;
    dv.period = sim::seconds(2);
    dv.route_timeout = sim::seconds(7);
    net.enable_dynamic_routing(dv);
    net.run_for(sim::seconds(15));  // let routing converge

    app::BulkServer server(dst, 21);
    app::BulkSender sender(src, dst.address(), 21, 24 * 1024 * 1024);
    sender.start();
    net.run_for(sim::seconds(5));
    std::printf("t=%-6s transfer underway, %llu bytes delivered\n",
                net.sim().now().to_string().c_str(),
                static_cast<unsigned long long>(server.total_bytes_received()));

    g2.set_down(true);
    std::printf("t=%-6s *** gateway g2 destroyed ***\n",
                net.sim().now().to_string().c_str());

    net.run_for(sim::seconds(120));
    std::printf("t=%-6s transfer %s: %llu/%llu bytes, %llu retransmitted "
                "segments, 0 application errors\n",
                net.sim().now().to_string().c_str(),
                sender.finished() ? "COMPLETED" : "incomplete",
                static_cast<unsigned long long>(server.total_bytes_received()),
                24ull * 1024 * 1024,
                static_cast<unsigned long long>(
                    sender.socket_stats().retransmitted_segments));
    std::printf("the connection survived because no gateway held any part "
                "of it\n\n");
    std::printf("%s\n", net.metrics_report().to_table().c_str());
}

void virtual_circuit_story() {
    std::printf("=== virtual-circuit network (the rejected design) ===\n");
    sim::Simulator sim;
    vc::VcNetwork net(sim, 2025);
    const auto s1 = net.add_switch("s1");
    const auto s2 = net.add_switch("s2");
    const auto s3 = net.add_switch("s3");
    const auto h1 = net.add_host(1, "src");
    const auto h2 = net.add_host(2, "dst");
    net.connect_host(h1, s1, link::presets::ethernet_hop());
    net.connect_switches(s1, s2, link::presets::ethernet_hop());
    net.connect_switches(s2, s3, link::presets::ethernet_hop());
    net.connect_host(h2, s3, link::presets::ethernet_hop());
    net.compute_routes();

    std::uint64_t delivered = 0;
    net.host_at(h2).set_incoming_handler([&](std::shared_ptr<vc::VcCall> call) {
        call->on_data = [&](std::span<const std::uint8_t> d) { delivered += d.size(); };
    });

    auto call = net.host_at(h1).place_call(2);
    bool dead = false;
    call->on_cleared = [&](std::uint8_t cause) {
        dead = true;
        std::printf("t=%-6s *** call CLEARED by the network (cause %u) ***\n",
                    sim.now().to_string().c_str(), cause);
    };
    call->on_accepted = [&] { call->send(util::ByteBuffer(64 * 1024, 0x42)); };
    sim.run_until(sim::seconds(5));
    std::printf("t=%-6s call established, %llu bytes delivered, switch s2 "
                "holds %zu circuit(s)\n",
                sim.now().to_string().c_str(),
                static_cast<unsigned long long>(delivered),
                net.switch_at(s2).active_circuits());

    net.fail_switch(s2);
    std::printf("t=%-6s *** switch s2 destroyed (its circuit table with it) ***\n",
                sim.now().to_string().c_str());
    // Keep talking so the neighbors notice the corpse.
    for (int i = 0; i < 20 && !dead; ++i) {
        call->send(util::ByteBuffer(1024, 0x42));
        sim.run_until(sim.now() + sim::seconds(5));
    }
    std::printf("the user must re-place the call: the connection state lived "
                "in the network\n");
}

}  // namespace

int main() {
    datagram_story();
    virtual_circuit_story();
    return 0;
}
