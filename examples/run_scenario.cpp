// Scenario runner: build and run an internetwork from a text description.
//
//   ./build/examples/run_scenario examples/scenarios/office_uplink.cnet
//   ./build/examples/run_scenario            # runs a built-in demo
//
// See src/app/scenario.h for the full directive reference.
#include <fstream>
#include <iostream>
#include <sstream>

#include "app/scenario.h"

namespace {

constexpr const char* kBuiltinDemo = R"(# built-in demo: office LAN uplinked
# over a 30 ms long-haul hop, with a mid-run gateway crash
host alice
host bob
host server
gateway uplink
gateway core

lan office
attach alice office
attach bob office
attach uplink office

link uplink core ethernet delay=30
link core server ethernet

routing dv

transfer alice server 512K
voice bob server 30s
echo server
interactive alice server 30s
fail core at 15s for 4s

run 60s
)";

}  // namespace

int main(int argc, char** argv) {
    std::string text;
    if (argc > 1) {
        std::ifstream file(argv[1]);
        if (!file) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        std::ostringstream buf;
        buf << file.rdbuf();
        text = buf.str();
        std::cout << "running scenario " << argv[1] << "\n\n";
    } else {
        text = kBuiltinDemo;
        std::cout << "running built-in demo scenario:\n" << kBuiltinDemo << "\n";
    }

    try {
        const auto report = catenet::app::run_scenario(text);
        report.print(std::cout);
    } catch (const catenet::app::ScenarioError& e) {
        std::cerr << "scenario error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
