// Voice chat — the paper's goal-2 story, live. A 64 kbit/s voice stream
// crosses a congested internet twice: once over UDP (the architecture's
// answer for real-time traffic) and once squeezed through TCP (what the
// original unified TCP would have forced). A bulk transfer shares the
// bottleneck to make things interesting.
//
// Build & run:   ./build/examples/voice_chat
#include <cstdio>

#include "app/bulk.h"
#include "app/voice.h"
#include "core/internetwork.h"
#include "link/presets.h"

using namespace catenet;

namespace {

void print_report(const char* label, const app::VoiceReport& r) {
    std::printf("%-12s sent %5llu  lost %4llu (%.1f%%)  late %4llu  "
                "median %.1f ms  p99 %.1f ms  jitter %.2f ms  usable %.1f%%\n",
                label, static_cast<unsigned long long>(r.frames_sent),
                static_cast<unsigned long long>(r.frames_lost), r.loss_fraction * 100,
                static_cast<unsigned long long>(r.frames_late), r.mean_latency_ms,
                r.p99_latency_ms, r.jitter_ms, r.usable_fraction * 100);
}

app::VoiceReport run_call(bool over_tcp) {
    core::Internetwork net(99);
    core::Host& caller = net.add_host("caller");
    core::Host& callee = net.add_host("callee");
    core::Host& file_src = net.add_host("file-src");
    core::Host& file_dst = net.add_host("file-dst");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");

    // Everyone shares one 256 kbit/s long-haul bottleneck.
    link::LinkParams bottleneck = link::presets::leased_line();
    bottleneck.bits_per_second = 256'000;
    bottleneck.queue_capacity_packets = 20;
    net.connect(caller, g1, link::presets::ethernet_hop());
    net.connect(file_src, g1, link::presets::ethernet_hop());
    net.connect(g1, g2, bottleneck);
    net.connect(g2, callee, link::presets::ethernet_hop());
    net.connect(g2, file_dst, link::presets::ethernet_hop());
    net.use_static_routes();

    // Background bulk transfer hammering the bottleneck.
    app::BulkServer file_server(file_dst, 21);
    app::BulkSender file_sender(file_src, file_dst.address(), 21, 8 * 1024 * 1024);
    file_sender.start();

    app::VoiceConfig voice;
    voice.playout_delay = sim::milliseconds(150);
    if (over_tcp) {
        app::VoiceOverTcp call(caller, callee, 5004, voice);
        call.start(sim::seconds(30));
        net.run_for(sim::seconds(40));
        return call.report();
    }
    app::VoiceOverUdp call(caller, callee, 5004, voice);
    call.start(sim::seconds(30));
    net.run_for(sim::seconds(40));
    return call.report();
}

}  // namespace

int main() {
    std::printf("30 s voice call over a congested 256 kbit/s bottleneck\n");
    std::printf("(a TCP bulk transfer shares the link; playout budget 150 ms)\n\n");

    const auto udp = run_call(/*over_tcp=*/false);
    const auto tcp = run_call(/*over_tcp=*/true);

    print_report("UDP voice:", udp);
    print_report("TCP voice:", tcp);

    std::printf(
        "\nThe paper's point: the reliable service retransmits and so "
        "trades loss for\nlateness; for speech, a lost sample is better than a "
        "late one. This is why\nTCP and IP were split and UDP exists "
        "(goal 2: multiple types of service).\n");
    return 0;
}
