// File transfer across a heterogeneous internet — the paper's goal 3 in
// one program. The same TCP moves a 1 MiB "file" over four wildly
// different network paths (Ethernet, 56k leased line, satellite, packet
// radio) with zero changes above the IP layer, and reports what each
// path felt like.
//
// Build & run:   ./build/examples/file_transfer
#include <cstdio>
#include <string>
#include <vector>

#include "app/bulk.h"
#include "core/internetwork.h"
#include "link/presets.h"

using namespace catenet;

namespace {

struct PathResult {
    std::string technology;
    double seconds;
    double goodput_kbps;
    std::uint64_t retransmissions;
    double srtt_ms;
};

PathResult run_path(const std::string& name, const link::LinkParams& params,
                    std::uint64_t bytes) {
    core::Internetwork net(7);
    core::Host& src = net.add_host("src");
    core::Host& dst = net.add_host("dst");
    core::Gateway& gw = net.add_gateway("gw");
    // First hop is always a local Ethernet; the second is the technology
    // under test — the classic "LAN to long-haul" shape.
    net.connect(src, gw, link::presets::ethernet_hop());
    net.connect(gw, dst, params);
    net.use_static_routes();

    app::BulkServer server(dst, 21);
    app::BulkSender sender(src, dst.address(), 21, bytes);
    sender.start();
    net.run_for(sim::seconds(3600));

    PathResult r;
    r.technology = name;
    if (sender.finished()) {
        r.seconds = (sender.finish_time() - sender.start_time()).seconds();
        r.goodput_kbps = sender.throughput_bps() / 1000.0;
    } else {
        r.seconds = -1;
        r.goodput_kbps = 0;
    }
    r.retransmissions = sender.socket_stats().retransmitted_segments;
    r.srtt_ms = sender.socket_stats().srtt_ms;
    return r;
}

}  // namespace

int main() {
    constexpr std::uint64_t kFileBytes = 1024 * 1024;
    std::printf("Transferring a %llu-byte file over four network technologies\n",
                static_cast<unsigned long long>(kFileBytes));
    std::printf("(same TCP, same IP, no per-network tuning — goal 3)\n\n");

    std::vector<PathResult> results;
    results.push_back(run_path("ethernet 10M", link::presets::ethernet_hop(), kFileBytes));
    results.push_back(run_path("satellite T1", link::presets::satellite(), kFileBytes));
    results.push_back(
        run_path("packet radio", link::presets::packet_radio(), kFileBytes / 8));
    results.push_back(
        run_path("leased 56k", link::presets::leased_line(), kFileBytes / 8));

    std::printf("%-14s %12s %14s %10s %10s\n", "technology", "time (s)",
                "goodput kb/s", "rexmits", "srtt ms");
    for (const auto& r : results) {
        std::printf("%-14s %12.2f %14.1f %10llu %10.1f\n", r.technology.c_str(),
                    r.seconds, r.goodput_kbps,
                    static_cast<unsigned long long>(r.retransmissions), r.srtt_ms);
    }
    std::printf("\n(the two slow paths carry a %llu-byte file so the demo "
                "finishes quickly)\n",
                static_cast<unsigned long long>(kFileBytes / 8));
    return 0;
}
