// Quickstart: the smallest complete catenet program.
//
// Builds a two-host internet joined by one gateway, opens a TCP
// connection through it, exchanges a greeting, and prints what happened.
//
//   host "alice" --- gateway "relay" --- host "bob"
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "core/internetwork.h"
#include "link/presets.h"

using namespace catenet;

int main() {
    // Every scenario starts with an Internetwork: it owns the simulator,
    // the seeded RNG, the nodes, and the wires between them.
    core::Internetwork net(/*seed=*/42);

    core::Host& alice = net.add_host("alice");
    core::Host& bob = net.add_host("bob");
    core::Gateway& relay = net.add_gateway("relay");

    // Two Ethernet-class point-to-point links. Addresses and subnets are
    // allocated automatically (10.0.x.0/24 per link).
    net.connect(alice, relay, link::presets::ethernet_hop());
    net.connect(relay, bob, link::presets::ethernet_hop());

    // Oracle shortest-path routes (the operator's static config).
    net.use_static_routes();

    // Bob listens. The accept callback hands over a connected socket.
    bob.tcp().listen(7777, [&](std::shared_ptr<tcp::TcpSocket> peer) {
        peer->on_data = [peer](std::span<const std::uint8_t> data) {
            std::printf("[bob]   got: \"%s\"\n",
                        util::string_from_buffer(data).c_str());
            const auto reply = util::buffer_from_string("hi alice, datagrams work");
            peer->send(reply);
            peer->push();
        };
        peer->on_remote_close = [peer] { peer->close(); };
    });

    // Alice connects and speaks.
    auto socket = alice.tcp().connect(bob.address(), 7777);
    socket->on_connected = [&] {
        std::printf("[alice] connected to %s\n", bob.address().to_string().c_str());
        socket->send(util::buffer_from_string("hello bob"));
        socket->push();
    };
    socket->on_data = [&](std::span<const std::uint8_t> data) {
        std::printf("[alice] got: \"%s\"\n", util::string_from_buffer(data).c_str());
        socket->close();
    };

    // Run the world for one simulated second.
    net.run_for(sim::seconds(1));

    std::printf("\n--- post-mortem ---\n");
    std::printf("simulated time:      %s\n", net.sim().now().to_string().c_str());
    std::printf("events processed:    %llu\n",
                static_cast<unsigned long long>(net.sim().events_processed()));
    std::printf("gateway forwarded:   %llu datagrams\n",
                static_cast<unsigned long long>(relay.ip().stats().forwarded));
    std::printf("alice TCP segments:  %llu sent, srtt %.2f ms\n",
                static_cast<unsigned long long>(socket->stats().segments_sent),
                socket->stats().srtt_ms);
    return 0;
}
