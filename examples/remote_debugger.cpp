// Remote debugging across a dying network — the XNET story from the
// paper's "types of service" discussion, staged live.
//
// A target machine sits behind a packet-radio hop that loses 30% of
// everything, and its gateway keeps crashing. This is precisely when you
// need a debugger — and precisely when a reliable-stream transport is at
// its worst (its own connection state becomes part of the problem). The
// XNET-style debugger runs on bare datagrams with idempotent retried
// requests, so it simply grinds through.
//
// Build & run:   ./build/examples/remote_debugger
#include <cstdio>

#include "app/xnet.h"
#include "core/internetwork.h"
#include "link/presets.h"

using namespace catenet;

int main() {
    core::Internetwork net(404);
    core::Host& workstation = net.add_host("workstation");
    core::Host& target = net.add_host("target");
    core::Gateway& relay = net.add_gateway("relay");

    link::LinkParams awful = link::presets::packet_radio();
    awful.drop_probability = 0.45;
    net.connect(workstation, relay, link::presets::ethernet_hop());
    net.connect(relay, target, awful);
    net.use_static_routes();
    // Black-box the session: every datagram event at every node lands in
    // the binary flight recorder, decodable after the fact.
    net.attach_flight_recorder();

    app::XnetTarget image(target, 69, 64 * 1024);
    // Plant a "crash dump" in target memory.
    const char* panic = "PANIC: bufferlet exhaustion at 0x7f00";
    for (std::size_t i = 0; panic[i] != '\0'; ++i) {
        image.poke_direct(0x1000 + static_cast<std::uint32_t>(i),
                          static_cast<std::uint8_t>(panic[i]));
    }

    // The relay crashes and recovers on a cycle, because of course it does.
    sim::PeriodicTimer chaos(net.sim(), [&, down = false]() mutable {
        down = !down;
        relay.set_down(down);
        std::printf("[%6.1fs] relay %s\n", net.sim().now().seconds(),
                    down ? "CRASHED" : "back up");
    });
    chaos.start(sim::milliseconds(1500));

    app::XnetDebugger debugger(workstation, target.address(), 69,
                               sim::milliseconds(400), /*max_retries=*/200);

    std::printf("debugging session over a 45%%-loss radio hop with a crashing relay:\n\n");

    bool finished = false;
    debugger.halt([&](const app::XnetResult& r) {
        std::printf("[%6.1fs] halt target: %s (after %llu retries so far)\n",
                    net.sim().now().seconds(), r.ok ? "ok" : "FAILED",
                    static_cast<unsigned long long>(debugger.retries()));
        debugger.peek(0x1000, 38, [&](const app::XnetResult& r2) {
            std::string dump(r2.data.begin(), r2.data.end());
            std::printf("[%6.1fs] peek 0x1000: \"%s\"\n", net.sim().now().seconds(),
                        dump.c_str());
            const std::uint8_t patch[] = {0x90, 0x90, 0x90, 0x90};  // nop it out
            debugger.poke(0x7f00 & 0xffff, patch, [&](const app::XnetResult& r3) {
                std::printf("[%6.1fs] patch applied: %s\n", net.sim().now().seconds(),
                            r3.ok ? "ok" : "FAILED");
                debugger.resume([&](const app::XnetResult& r4) {
                    std::printf("[%6.1fs] resume target: %s\n",
                                net.sim().now().seconds(), r4.ok ? "ok" : "FAILED");
                    finished = true;
                });
            });
        });
    });

    net.sim().run_while([&] { return !finished && net.sim().now() < sim::seconds(300); });
    chaos.stop();

    std::printf("\nsession %s; the debugger retried %llu datagrams and never "
                "needed a connection.\n",
                finished ? "complete" : "incomplete",
                static_cast<unsigned long long>(debugger.retries()));
    std::printf("(idempotent requests over raw datagrams: the paper's reason UDP "
                "had to exist.)\n");

    // What the network actually did, per the telemetry registry: the
    // radio hop's losses show up as the gap between relay fwd and target rx.
    std::printf("\n%s", net.metrics_report().to_table().c_str());
    return 0;
}
