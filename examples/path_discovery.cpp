// Path discovery (traceroute) — the architecture debugging itself.
//
// Nothing in the datagram internet reports paths; but TTL expiry plus
// ICMP Time Exceeded lets a host map the gateways its packets traverse
// with zero network cooperation. We build a two-region internet (interior
// DV routing + EGP between regions), trace the path, break the path,
// let routing heal it, and trace again to watch the detour appear.
//
// Build & run:   ./build/examples/path_discovery
#include <cstdio>

#include "app/traceroute.h"
#include "core/internetwork.h"
#include "link/presets.h"

using namespace catenet;

namespace {

void print_hops(const std::vector<app::TracerouteHop>& hops) {
    for (const auto& hop : hops) {
        if (hop.responder) {
            std::printf("  %2d  %-12s  %.2f ms%s\n", hop.ttl,
                        hop.responder->to_string().c_str(), hop.rtt.millis(),
                        hop.reached_destination ? "  <- destination" : "");
        } else {
            std::printf("  %2d  *  (timeout)\n", hop.ttl);
        }
    }
}

}  // namespace

int main() {
    core::Internetwork net(77);
    core::Host& src = net.add_host("src");
    core::Host& dst = net.add_host("dst");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");   // primary middle hop
    core::Gateway& g3 = net.add_gateway("g3");   // detour middle hop
    core::Gateway& g4 = net.add_gateway("g4");

    net.connect(src, g1, link::presets::ethernet_hop());
    const auto primary = net.connect(g1, g2, link::presets::ethernet_hop());
    net.connect(g2, g4, link::presets::ethernet_hop());
    net.connect(g1, g3, link::presets::satellite());   // slow backup
    net.connect(g3, g4, link::presets::satellite());
    net.connect(g4, dst, link::presets::ethernet_hop());

    routing::DvConfig dv;
    dv.period = sim::seconds(2);
    dv.route_timeout = sim::seconds(7);
    net.enable_dynamic_routing(dv);
    net.run_for(sim::seconds(10));

    std::printf("traceroute to %s (before failure):\n", dst.address().to_string().c_str());
    {
        app::Traceroute trace(src, dst.address());
        trace.start({});
        net.run_for(sim::seconds(30));
        print_hops(trace.hops());
    }

    std::printf("\n*** cutting the g1-g2 link; distance-vector routing heals "
                "the path ***\n\n");
    net.fail_link(primary);
    net.run_for(sim::seconds(15));

    std::printf("traceroute to %s (after reroute):\n", dst.address().to_string().c_str());
    {
        app::Traceroute trace(src, dst.address());
        trace.start({});
        net.run_for(sim::seconds(60));
        print_hops(trace.hops());
    }

    std::printf("\nThe detour shows itself twice over: a different middle "
                "gateway, and\nsatellite-sized round-trip times. The network "
                "never announced the change;\nthe endpoints inferred "
                "everything from TTL and ICMP (goal-3 minimalism).\n");
    return 0;
}
